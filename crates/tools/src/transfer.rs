//! The state-transfer tool (paper Section 3.8).
//!
//! "This tool provides a way to join a pre-existing group of processes, transferring state
//! from the operational processes to the one that wants to join. ...  Up to the instant
//! before the join occurs, the old set of members continue to receive requests and the new
//! one does not.  Then, the join takes place and the next request is received by the new
//! member too, and only after it has received the state that was current at the time of the
//! join."
//!
//! Implementation: the tool watches the group view.  When a view that adds members installs,
//! the *oldest* member encodes its state (via the application-supplied callback) and sends it
//! to each joiner in blocks.  The encoding runs **inside the view-change dispatch**, which
//! the protocol stack performs synchronously at the flush cut — after every pre-cut message
//! has been applied and before any post-cut message can be — so the snapshot is taken
//! exactly at the cut, never "whenever the joiner happened to ask".  Each block is tagged
//! with the cut's covered frontier ([`Frontier`], taken from the view event), the wire-level
//! statement of which messages the snapshot already includes; the joiner's protocol endpoint
//! independently uses the same frontier (from the flush commit) to suppress redelivery of
//! covered messages, so together snapshot + post-cut flow partition the group's history and
//! every message is applied exactly once even when the join races unstable traffic.
//!
//! On the joiner's side, application messages that arrive before the final state block are
//! not yet applicable: the snapshot they follow has not landed.  Entries registered through
//! [`StateTransfer::on_entry_buffered`] hold such messages in arrival order and replay them
//! the moment the transfer completes, which is the paper's "buffered by the application"
//! discipline packaged as part of the tool.
//!
//! Known limitation (tracked in ROADMAP.md): if the transfer *source* crashes after the
//! cut but before the joiner received the `xfer-last` block, the joiner never becomes
//! ready — no survivor re-serves the snapshot (the view monitor only serves
//! `view.joined`), so buffered entries keep holding traffic ([`StateTransfer::buffered_len`]
//! exposes the growth).  An exactly-once re-transfer needs a snapshot taken at a *new*
//! flush cut; re-encoding at request-processing time would race post-cut traffic already
//! sitting in the joiner's buffer.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use vsync_core::{
    Address, EntryId, Frontier, GroupId, Message, ProcessBuilder, ProtocolKind, ToolCtx,
};

/// Produces the state to transfer, as a series of variable-sized blocks (paper: "the
/// application must be able to encode its state into a series of variable sized blocks").
pub type EncodeFn = Box<dyn FnMut() -> Vec<Message>>;

/// Applies one received state block.
pub type ApplyFn = Box<dyn FnMut(&mut ToolCtx<'_>, &Message)>;

struct Inner {
    group: GroupId,
    encode: EncodeFn,
    apply: ApplyFn,
    ready: bool,
    /// The covered frontier tagged onto the most recently applied snapshot block: which
    /// pre-cut messages the transferred state already includes.
    covered: Option<Frontier>,
    /// Messages for buffered entries that arrived before the transfer completed, in
    /// arrival order.
    pending: Vec<(EntryId, Message)>,
    /// The application handlers behind [`StateTransfer::on_entry_buffered`].
    wrapped: BTreeMap<EntryId, ApplyFn>,
    blocks_sent: u64,
    blocks_received: u64,
    transfers_served: u64,
}

/// The state-transfer tool attached to one group member (or joiner).
#[derive(Clone)]
pub struct StateTransfer {
    inner: Rc<RefCell<Inner>>,
}

/// Runs one buffered-entry handler outside the state borrow (handlers may re-enter the
/// tool through the context's recorded actions).
fn run_wrapped(inner: &Rc<RefCell<Inner>>, ctx: &mut ToolCtx<'_>, entry: EntryId, msg: &Message) {
    let taken = inner.borrow_mut().wrapped.remove(&entry);
    let Some(mut handler) = taken else { return };
    handler(ctx, msg);
    inner.borrow_mut().wrapped.insert(entry, handler);
}

impl StateTransfer {
    /// Creates the tool: `encode` produces the state blocks at a transfer source, `apply`
    /// consumes them at a joiner.
    pub fn new(
        group: GroupId,
        encode: impl FnMut() -> Vec<Message> + 'static,
        apply: impl FnMut(&mut ToolCtx<'_>, &Message) + 'static,
    ) -> Self {
        StateTransfer {
            inner: Rc::new(RefCell::new(Inner {
                group,
                encode: Box::new(encode),
                apply: Box::new(apply),
                ready: false,
                covered: None,
                pending: Vec::new(),
                wrapped: BTreeMap::new(),
                blocks_sent: 0,
                blocks_received: 0,
                transfers_served: 0,
            })),
        }
    }

    /// Binds an application entry whose messages must not be applied before the transferred
    /// state: while the member is not [`StateTransfer::is_ready`], arriving messages are
    /// buffered in order; the moment the final snapshot block applies they are replayed
    /// through `handler`.  Members that are ready (the creator, or a joiner after its
    /// transfer) dispatch straight through.  Combined with the endpoint-side suppression of
    /// snapshot-covered redeliveries, this makes every message apply exactly once at a
    /// joiner regardless of how unstable the traffic was at join time.
    pub fn on_entry_buffered(
        &self,
        builder: &mut ProcessBuilder,
        entry: EntryId,
        handler: impl FnMut(&mut ToolCtx<'_>, &Message) + 'static,
    ) {
        self.inner
            .borrow_mut()
            .wrapped
            .insert(entry, Box::new(handler));
        let inner = self.inner.clone();
        builder.on_entry(entry, move |ctx, msg| {
            if !inner.borrow().ready {
                inner.borrow_mut().pending.push((entry, msg.clone()));
                return;
            }
            run_wrapped(&inner, ctx, entry, msg);
        });
    }

    /// Binds the transfer entry and the view monitor.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let group = self.inner.borrow().group;

        // Receiving side: apply blocks; the block flagged `xfer-last` completes the transfer
        // and releases anything the buffered entries held back in the meantime.
        let inner = self.inner.clone();
        builder.on_entry(EntryId::GENERIC_XFER, move |ctx, msg| {
            {
                let mut state = inner.borrow_mut();
                state.blocks_received += 1;
                if let Some(covered) = msg.get_u64_list("xfer-covered") {
                    state.covered = Some(Frontier::from_wire(covered));
                }
            }
            // Run the application callback outside the borrow.
            let mut taken = {
                let mut state = inner.borrow_mut();
                std::mem::replace(&mut state.apply, Box::new(|_ctx, _m| {}))
            };
            taken(ctx, msg);
            let replay = {
                let mut state = inner.borrow_mut();
                state.apply = taken;
                if msg.get_bool("xfer-last").unwrap_or(false) {
                    state.ready = true;
                    std::mem::take(&mut state.pending)
                } else {
                    Vec::new()
                }
            };
            // The snapshot is in place: replay the messages that arrived ahead of it, in
            // their original arrival order.
            for (entry, held) in replay {
                run_wrapped(&inner, ctx, entry, &held);
            }
        });

        // Sending side: when a view adds members and we are the oldest operational member,
        // push our state to every joiner.  This handler runs inside the stack's view-change
        // dispatch — synchronously at the flush cut — so `encode` observes exactly the
        // pre-cut state, and every block is tagged with the cut's covered frontier.
        let inner = self.inner.clone();
        builder.on_view_change(group, move |ctx, ev| {
            let me = ctx.me();
            // The founding member is "ready" by definition: there is nobody to transfer from.
            if ev.view.len() == 1 && ev.view.contains(me) {
                inner.borrow_mut().ready = true;
            }
            if ev.view.joined.is_empty() || ev.view.joined.contains(&me) {
                return;
            }
            if ev.view.rank_of(me) != Some(0) {
                return;
            }
            if !inner.borrow().ready {
                return;
            }
            let blocks = {
                let mut state = inner.borrow_mut();
                let mut encode = std::mem::replace(&mut state.encode, Box::new(Vec::new));
                drop(state);
                let blocks = encode();
                let mut state = inner.borrow_mut();
                state.encode = encode;
                state.transfers_served += 1;
                blocks
            };
            let covered_wire = ev.covered.to_wire();
            for joiner in &ev.view.joined {
                let total = blocks.len().max(1);
                if blocks.is_empty() {
                    // Even an empty state sends one terminating block so the joiner knows it
                    // is up to date.
                    let mut m = Message::new();
                    m.set("xfer-last", true);
                    m.set("xfer-covered", covered_wire.clone());
                    ctx.send(
                        Address::Process(*joiner),
                        EntryId::GENERIC_XFER,
                        m,
                        ProtocolKind::Cbcast,
                    );
                    inner.borrow_mut().blocks_sent += 1;
                    continue;
                }
                for (i, block) in blocks.iter().enumerate() {
                    let mut m = block.clone();
                    m.set("xfer-block", i as u64);
                    m.set("xfer-last", i + 1 == total);
                    m.set("xfer-covered", covered_wire.clone());
                    ctx.send(
                        Address::Process(*joiner),
                        EntryId::GENERIC_XFER,
                        m,
                        ProtocolKind::Cbcast,
                    );
                    inner.borrow_mut().blocks_sent += 1;
                }
            }
        });
    }

    /// Marks this member as already holding the authoritative state (the group creator calls
    /// this *before any traffic flows*; joiners become ready when their transfer completes).
    pub fn mark_ready(&self) {
        self.inner.borrow_mut().ready = true;
    }

    /// True once this member holds the full state (creator, or joiner after transfer).
    pub fn is_ready(&self) -> bool {
        self.inner.borrow().ready
    }

    /// The covered frontier tagged onto the received snapshot: which pre-cut messages the
    /// transferred state already includes.  `None` before any tagged block arrived.
    pub fn covered(&self) -> Option<Frontier> {
        self.inner.borrow().covered.clone()
    }

    /// Number of messages currently held by buffered entries awaiting the snapshot.
    pub fn buffered_len(&self) -> usize {
        self.inner.borrow().pending.len()
    }

    /// Number of state blocks sent to joiners by this member.
    pub fn blocks_sent(&self) -> u64 {
        self.inner.borrow().blocks_sent
    }

    /// Number of state blocks received by this member.
    pub fn blocks_received(&self) -> u64 {
        self.inner.borrow().blocks_received
    }

    /// Number of joins this member served as the transfer source.
    pub fn transfers_served(&self) -> u64 {
        self.inner.borrow().transfers_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_flags() {
        let t = StateTransfer::new(GroupId(1), Vec::new, |_ctx, _m| {});
        assert!(!t.is_ready());
        t.mark_ready();
        assert!(t.is_ready());
        assert_eq!(t.blocks_sent(), 0);
        assert_eq!(t.blocks_received(), 0);
        assert_eq!(t.transfers_served(), 0);
        assert_eq!(t.buffered_len(), 0);
        assert!(t.covered().is_none());
    }
}
