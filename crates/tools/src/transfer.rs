//! The state-transfer tool (paper Section 3.8).
//!
//! "This tool provides a way to join a pre-existing group of processes, transferring state
//! from the operational processes to the one that wants to join. ...  Up to the instant
//! before the join occurs, the old set of members continue to receive requests and the new
//! one does not.  Then, the join takes place and the next request is received by the new
//! member too, and only after it has received the state that was current at the time of the
//! join."
//!
//! Implementation: the tool watches the group view.  When a view that adds members installs,
//! the *oldest* member encodes its state (via the application-supplied callback) and sends it
//! to each joiner in blocks.  The encoding runs **inside the view-change dispatch**, which
//! the protocol stack performs synchronously at the flush cut — after every pre-cut message
//! has been applied and before any post-cut message can be — so the snapshot is taken
//! exactly at the cut, never "whenever the joiner happened to ask".  Each block is tagged
//! with the cut's covered frontier ([`Frontier`], taken from the view event), the wire-level
//! statement of which messages the snapshot already includes; the joiner's protocol endpoint
//! independently uses the same frontier (from the flush commit) to suppress redelivery of
//! covered messages, so together snapshot + post-cut flow partition the group's history and
//! every message is applied exactly once even when the join races unstable traffic.
//!
//! On the joiner's side, application messages that arrive before the final state block are
//! not yet applicable: the snapshot they follow has not landed.  Entries registered through
//! [`StateTransfer::on_entry_buffered`] hold such messages in arrival order and replay them
//! the moment the transfer completes, which is the paper's "buffered by the application"
//! discipline packaged as part of the tool.
//!
//! # Survivor re-serve
//!
//! If the transfer *source* crashes after the cut but before the joiner received the final
//! block, nobody else holds a snapshot taken at the joiner's cut — re-encoding at
//! request-processing time cannot be exactly-once, because post-cut traffic is already
//! sitting in the joiner's buffer.  The tool therefore recovers by forcing a **fresh cut**:
//! when a still-waiting member sees a view that removes processes, it discards the dead
//! transfer's partial blocks and its post-cut buffer, then GBCASTs a re-request marker.
//! The marker rides the next flush and is delivered in the resulting view event's
//! `gbcasts`, exactly at that new cut — where the (new) rank-0 member encodes a fresh
//! snapshot and serves it like any join-cut transfer.  Every block is tagged with the view
//! sequence of its serve cut (`xfer-epoch`); the joiner rejects blocks from superseded
//! cuts, so a straggler block from the dead transfer can never corrupt the fresh one.
//!
//! Completion is deferred until the serve cut has installed *locally*: a final block that
//! outruns the joiner's own flush commit must not release the buffer early, because the
//! commit's cut redeliveries (all covered by the fresh snapshot) are still on their way
//! into it.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use vsync_core::{
    Address, EntryId, Frontier, GroupId, Message, ProcessBuilder, ProcessId, ProtocolKind, ToolCtx,
    ViewEvent,
};

/// Produces the state to transfer, as a series of variable-sized blocks (paper: "the
/// application must be able to encode its state into a series of variable sized blocks").
pub type EncodeFn = Box<dyn FnMut() -> Vec<Message>>;

/// Applies one received state block.
pub type ApplyFn = Box<dyn FnMut(&mut ToolCtx<'_>, &Message)>;

/// Buffered-message count at which a waiting joiner with no snapshot progress is declared
/// stalled (see [`StateTransfer::with_stall_threshold`]).
const DEFAULT_STALL_THRESHOLD: usize = 32;

/// Hard cap on the joiner's post-cut buffer (see [`StateTransfer::with_buffer_limit`]).
const DEFAULT_MAX_BUFFERED: usize = 1024;

struct Inner {
    group: GroupId,
    encode: EncodeFn,
    apply: ApplyFn,
    ready: bool,
    /// The covered frontier tagged onto the most recently applied snapshot block: which
    /// pre-cut messages the transferred state already includes.
    covered: Option<Frontier>,
    /// Messages for buffered entries that arrived before the transfer completed, in
    /// arrival order.
    pending: Vec<(EntryId, Message)>,
    /// The application handlers behind [`StateTransfer::on_entry_buffered`].
    wrapped: BTreeMap<EntryId, ApplyFn>,
    /// Sequence of the most recent view event observed for the group.  Blocks completing
    /// a serve cut that has not installed locally yet defer readiness (see module docs).
    last_view_seq: u64,
    /// Minimum serve-cut sequence a block must carry to be applied.  Bumped when a dead
    /// transfer is abandoned so its stragglers cannot corrupt the fresh snapshot.
    min_epoch: u64,
    /// Serve-cut sequence whose final block has been applied but whose view has not
    /// installed locally yet; readiness completes at that view event.
    complete_at: Option<u64>,
    /// Whether the survivor re-serve protocol is active (disabled only by tests pinning
    /// the wedge it fixes).
    reserve_enabled: bool,
    /// Stall detection: `blocks_received` when the buffer first crossed the threshold.
    stall_mark: Option<u64>,
    stall_threshold: usize,
    stalled: bool,
    stalled_events: u64,
    /// Hard cap on `pending`: a transfer that cannot keep up with hostile post-cut load
    /// must fail cleanly (drop + re-request at a fresh cut) instead of growing without
    /// bound.
    max_buffered: usize,
    buffer_overflows: u64,
    /// Fence epoch of the last overflow-triggered re-request, so repeated overflows
    /// within the same view drop the buffer again but do not flood GBCAST markers.
    overflow_marker_epoch: u64,
    blocks_sent: u64,
    blocks_received: u64,
    transfers_served: u64,
    reserves_served: u64,
    rerequests_sent: u64,
    stale_blocks_discarded: u64,
}

/// The state-transfer tool attached to one group member (or joiner).
#[derive(Clone)]
pub struct StateTransfer {
    inner: Rc<RefCell<Inner>>,
}

/// Runs one buffered-entry handler outside the state borrow (handlers may re-enter the
/// tool through the context's recorded actions).
fn run_wrapped(inner: &Rc<RefCell<Inner>>, ctx: &mut ToolCtx<'_>, entry: EntryId, msg: &Message) {
    let taken = inner.borrow_mut().wrapped.remove(&entry);
    let Some(mut handler) = taken else { return };
    handler(ctx, msg);
    inner.borrow_mut().wrapped.insert(entry, handler);
}

/// True if `payload` is a re-serve request marker, returning the requesting member.
fn rerequest_joiner(payload: &Message) -> Option<ProcessId> {
    if !payload.get_bool("xfer-rerequest").unwrap_or(false) {
        return None;
    }
    payload.get_addr("xfer-joiner").and_then(|a| a.as_process())
}

impl StateTransfer {
    /// Creates the tool: `encode` produces the state blocks at a transfer source, `apply`
    /// consumes them at a joiner.
    pub fn new(
        group: GroupId,
        encode: impl FnMut() -> Vec<Message> + 'static,
        apply: impl FnMut(&mut ToolCtx<'_>, &Message) + 'static,
    ) -> Self {
        StateTransfer {
            inner: Rc::new(RefCell::new(Inner {
                group,
                encode: Box::new(encode),
                apply: Box::new(apply),
                ready: false,
                covered: None,
                pending: Vec::new(),
                wrapped: BTreeMap::new(),
                last_view_seq: 0,
                min_epoch: 0,
                complete_at: None,
                reserve_enabled: true,
                stall_mark: None,
                stall_threshold: DEFAULT_STALL_THRESHOLD,
                stalled: false,
                stalled_events: 0,
                max_buffered: DEFAULT_MAX_BUFFERED,
                buffer_overflows: 0,
                overflow_marker_epoch: 0,
                blocks_sent: 0,
                blocks_received: 0,
                transfers_served: 0,
                reserves_served: 0,
                rerequests_sent: 0,
                stale_blocks_discarded: 0,
            })),
        }
    }

    /// Binds an application entry whose messages must not be applied before the transferred
    /// state: while the member is not [`StateTransfer::is_ready`], arriving messages are
    /// buffered in order; the moment the final snapshot block applies they are replayed
    /// through `handler`.  Members that are ready (the creator, or a joiner after its
    /// transfer) dispatch straight through.  Combined with the endpoint-side suppression of
    /// snapshot-covered redeliveries, this makes every message apply exactly once at a
    /// joiner regardless of how unstable the traffic was at join time.
    pub fn on_entry_buffered(
        &self,
        builder: &mut ProcessBuilder,
        entry: EntryId,
        handler: impl FnMut(&mut ToolCtx<'_>, &Message) + 'static,
    ) {
        self.inner
            .borrow_mut()
            .wrapped
            .insert(entry, Box::new(handler));
        let inner = self.inner.clone();
        let group = self.inner.borrow().group;
        builder.on_entry(entry, move |ctx, msg| {
            enum Growth {
                Quiet,
                Stalled,
                /// (messages dropped, whether to GBCAST a re-request marker)
                Overflow(usize, bool),
            }
            let growth = {
                let mut state = inner.borrow_mut();
                if state.ready {
                    Growth::Quiet
                } else if state.pending.len() >= state.max_buffered {
                    // The buffer is full: the transfer cannot complete exactly-once with
                    // this backlog intact anyway (we cannot tell which held messages a
                    // snapshot that never arrived would have covered), so fail the join
                    // attempt cleanly — drop everything (this message included; it
                    // predates the fresh cut, whose snapshot will cover it) and fence
                    // onto a snapshot at a fresh cut, exactly the dead-source recovery
                    // path.  The pending-join retry discipline above us handles a
                    // contact that never answers at all.
                    let dropped = state.pending.len() + 1;
                    state.buffer_overflows += 1;
                    let fence = state.last_view_seq + 1;
                    state.abandon_transfer(fence);
                    let send_marker = state.overflow_marker_epoch < fence;
                    if send_marker {
                        state.overflow_marker_epoch = fence;
                        state.rerequests_sent += 1;
                    }
                    Growth::Overflow(dropped, send_marker)
                } else {
                    state.pending.push((entry, msg.clone()));
                    if state.note_buffer_growth() {
                        Growth::Stalled
                    } else {
                        Growth::Quiet
                    }
                }
            };
            match growth {
                Growth::Stalled => {
                    let (buffered, blocks) = {
                        let state = inner.borrow();
                        (state.pending.len(), state.blocks_received)
                    };
                    ctx.trace(format!(
                        "TransferStalled: {buffered} messages buffered with no snapshot \
                         progress (blocks_received={blocks})"
                    ));
                    return;
                }
                Growth::Overflow(dropped, send_marker) => {
                    ctx.trace(format!(
                        "BufferOverflow: dropped {dropped} buffered messages; \
                         re-requesting a snapshot at a fresh cut"
                    ));
                    if let Some(stats) = ctx.stats() {
                        stats.with(|s| s.count_transfer_overflow());
                    }
                    if send_marker {
                        let me = ctx.me();
                        let mut req = Message::new();
                        req.set("xfer-rerequest", true);
                        req.set("xfer-joiner", Address::Process(me));
                        ctx.send(
                            Address::Group(group),
                            EntryId::GENERIC_XFER,
                            req,
                            ProtocolKind::Gbcast,
                        );
                    }
                    return;
                }
                Growth::Quiet => {}
            }
            if !inner.borrow().ready {
                return;
            }
            run_wrapped(&inner, ctx, entry, msg);
        });
    }

    /// Binds the transfer entry and the view monitor.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let group = self.inner.borrow().group;

        // Receiving side: apply blocks; the block flagged `xfer-last` completes the transfer
        // and releases anything the buffered entries held back in the meantime.
        let inner = self.inner.clone();
        builder.on_entry(EntryId::GENERIC_XFER, move |ctx, msg| {
            // Re-request markers ride the GBCAST payload path and reach every member's
            // transfer entry; they carry no state.
            if rerequest_joiner(msg).is_some() {
                return;
            }
            {
                let mut state = inner.borrow_mut();
                let epoch = msg.get_u64("xfer-epoch").unwrap_or(0);
                if state.ready || epoch < state.min_epoch {
                    // A straggler from a superseded serve (or a late re-serve after this
                    // member already completed): applying it would corrupt newer state.
                    state.stale_blocks_discarded += 1;
                    return;
                }
                state.blocks_received += 1;
                state.stall_mark = None;
                state.stalled = false;
                if let Some(covered) = msg.get_u64_list("xfer-covered") {
                    state.covered = Some(Frontier::from_wire(covered));
                }
            }
            // Run the application callback outside the borrow.
            let mut taken = {
                let mut state = inner.borrow_mut();
                std::mem::replace(&mut state.apply, Box::new(|_ctx, _m| {}))
            };
            taken(ctx, msg);
            let replay = {
                let mut state = inner.borrow_mut();
                state.apply = taken;
                if msg.get_bool("xfer-last").unwrap_or(false) {
                    let epoch = msg.get_u64("xfer-epoch").unwrap_or(0);
                    if state.last_view_seq >= epoch {
                        state.finish_transfer()
                    } else {
                        // The serve cut has not installed locally yet: the commit's cut
                        // redeliveries (covered by this snapshot) may still be on their
                        // way into the buffer.  Readiness completes at that view event.
                        state.complete_at = Some(epoch);
                        Vec::new()
                    }
                } else {
                    Vec::new()
                }
            };
            // The snapshot is in place: replay the messages that arrived ahead of it, in
            // their original arrival order.
            for (entry, held) in replay {
                run_wrapped(&inner, ctx, entry, &held);
            }
        });

        // View monitor: joiner-side re-serve detection plus the sending side.  Both run
        // inside the stack's view-change dispatch — synchronously at the flush cut.
        let inner = self.inner.clone();
        builder.on_view_change(group, move |ctx, ev| {
            let me = ctx.me();
            let rearmed = {
                let mut state = inner.borrow_mut();
                state.last_view_seq = ev.view.seq();
                // The founding member is "ready" by definition: nobody to transfer from.
                if ev.view.len() == 1 && ev.view.contains(me) {
                    state.ready = true;
                    false
                } else if state.ready && ev.view.joined.contains(&me) {
                    // A *ready* member re-admitted as a joiner has been in exile: its
                    // stack sat out some views in a wedged minority, discarded the
                    // divergent protocol tail and rejoined after the heal.  Whatever
                    // state it holds is a stale prefix, so drop readiness and fence onto
                    // this cut — the rejoin snapshot (and nothing older) must apply.
                    state.ready = false;
                    state.covered = None;
                    state.prepare_for_serve(ev.view.seq());
                    true
                } else {
                    false
                }
            };
            if rearmed {
                ctx.trace(format!(
                    "rejoined at view {} after exile; awaiting a fresh snapshot",
                    ev.view.seq()
                ));
            }
            joiner_side(&inner, ctx, ev, me, group);
            sender_side(&inner, ctx, ev, me);
        });
    }

    /// Marks this member as already holding the authoritative state (the group creator calls
    /// this *before any traffic flows*; joiners become ready when their transfer completes).
    pub fn mark_ready(&self) {
        self.inner.borrow_mut().ready = true;
    }

    /// Disables the survivor re-serve protocol.  Exists only so tests can pin the wedge it
    /// fixes (a joiner whose transfer source died stays buffered forever).
    pub fn disable_reserve(&self) {
        self.inner.borrow_mut().reserve_enabled = false;
    }

    /// Sets the buffered-message count at which a waiting member with no snapshot progress
    /// raises a `TransferStalled` trace event (default 32).
    pub fn with_stall_threshold(self, threshold: usize) -> Self {
        self.inner.borrow_mut().stall_threshold = threshold.max(1);
        self
    }

    /// Sets the hard cap on the post-cut buffer (default 1024).  Crossing it raises a
    /// `BufferOverflow` trace event, drops the buffer, and re-requests the snapshot at a
    /// fresh cut — bounding memory under hostile load at the cost of restarting the
    /// transfer.
    pub fn with_buffer_limit(self, limit: usize) -> Self {
        self.inner.borrow_mut().max_buffered = limit.max(1);
        self
    }

    /// True once this member holds the full state (creator, or joiner after transfer).
    pub fn is_ready(&self) -> bool {
        self.inner.borrow().ready
    }

    /// True while the buffer has grown past the stall threshold with no snapshot progress.
    pub fn is_stalled(&self) -> bool {
        self.inner.borrow().stalled
    }

    /// Number of `TransferStalled` events raised by this member.
    pub fn stalled_events(&self) -> u64 {
        self.inner.borrow().stalled_events
    }

    /// Number of `BufferOverflow` events: times the post-cut buffer hit its cap and the
    /// transfer restarted at a fresh cut.
    pub fn buffer_overflows(&self) -> u64 {
        self.inner.borrow().buffer_overflows
    }

    /// The covered frontier tagged onto the received snapshot: which pre-cut messages the
    /// transferred state already includes.  `None` before any tagged block arrived.
    pub fn covered(&self) -> Option<Frontier> {
        self.inner.borrow().covered.clone()
    }

    /// Number of messages currently held by buffered entries awaiting the snapshot.
    pub fn buffered_len(&self) -> usize {
        self.inner.borrow().pending.len()
    }

    /// Number of state blocks sent to joiners by this member.
    pub fn blocks_sent(&self) -> u64 {
        self.inner.borrow().blocks_sent
    }

    /// Number of state blocks received by this member.
    pub fn blocks_received(&self) -> u64 {
        self.inner.borrow().blocks_received
    }

    /// Number of joins this member served as the transfer source.
    pub fn transfers_served(&self) -> u64 {
        self.inner.borrow().transfers_served
    }

    /// Number of transfers this member re-served after the original source died.
    pub fn reserves_served(&self) -> u64 {
        self.inner.borrow().reserves_served
    }

    /// Number of snapshot re-requests this member issued after its source died.
    pub fn rerequests_sent(&self) -> u64 {
        self.inner.borrow().rerequests_sent
    }

    /// Number of blocks discarded as stragglers from a superseded (dead) serve cut.
    pub fn stale_blocks_discarded(&self) -> u64 {
        self.inner.borrow().stale_blocks_discarded
    }
}

impl Inner {
    /// Completes the transfer: marks ready and hands back the held messages for replay.
    fn finish_transfer(&mut self) -> Vec<(EntryId, Message)> {
        self.ready = true;
        self.complete_at = None;
        self.stall_mark = None;
        self.stalled = false;
        std::mem::take(&mut self.pending)
    }

    /// Abandons an in-flight transfer whose source is gone: the partial snapshot and the
    /// buffered post-cut traffic all belong to the dead cut; a fresh serve (epoch >
    /// `abandoned_at`) will cover everything up to *its* cut.
    fn abandon_transfer(&mut self, abandoned_at: u64) {
        self.covered = None;
        self.complete_at = None;
        self.prepare_for_serve(abandoned_at);
    }

    /// Fences this member onto the serve cut `serve_seq`: earlier-epoch stragglers are
    /// rejected and the buffer (all of it predating the cut, hence covered by its
    /// snapshot) is dropped.  Progress already made by fresh-epoch blocks that raced
    /// ahead of the local commit is kept.
    fn prepare_for_serve(&mut self, serve_seq: u64) {
        self.pending.clear();
        self.min_epoch = serve_seq;
        self.stall_mark = None;
        self.stalled = false;
    }

    /// Records one more buffered message; returns true when this growth crosses into the
    /// stalled condition (threshold reached with no block received since it was reached).
    fn note_buffer_growth(&mut self) -> bool {
        if self.pending.len() < self.stall_threshold {
            return false;
        }
        match self.stall_mark {
            None => {
                self.stall_mark = Some(self.blocks_received);
                false
            }
            Some(mark) if self.blocks_received == mark && !self.stalled => {
                self.stalled = true;
                self.stalled_events += 1;
                true
            }
            Some(_) => false,
        }
    }
}

/// What the joiner-side view handling decided to do at one view event.
enum JoinerAction {
    /// A deferred transfer completed at this cut; nothing to replay (the buffer was
    /// covered by the snapshot and cleared).
    Completed,
    /// This cut is our fresh serve cut; the epoch fence is in place.
    Prepared,
    /// Our source departed: a re-request marker must be GBCAST to force a fresh cut.
    Rerequest,
}

/// Joiner-side view handling: completes a deferred transfer once its serve cut installs,
/// prepares for a fresh serve when this cut carries our re-request marker, and detects a
/// dead source (a departure while we are still waiting) by re-requesting at a fresh cut.
fn joiner_side(
    inner: &Rc<RefCell<Inner>>,
    ctx: &mut ToolCtx<'_>,
    ev: &ViewEvent,
    me: ProcessId,
    group: GroupId,
) {
    if inner.borrow().ready || !ev.view.contains(me) {
        return;
    }
    let action = {
        let mut state = inner.borrow_mut();
        let my_marker = ev.gbcasts.iter().any(|g| rerequest_joiner(g) == Some(me));
        if state
            .complete_at
            .is_some_and(|epoch| ev.view.seq() >= epoch)
        {
            // The serve cut whose final block already arrived has now installed locally.
            // Everything buffered up to this instant predates the cut (the endpoint holds
            // post-cut traffic until the view installs) and is therefore covered by the
            // snapshot: drop it, don't replay it.
            state.pending.clear();
            let _ = state.finish_transfer();
            JoinerAction::Completed
        } else if my_marker {
            // This cut is our fresh serve cut.  Everything buffered so far predates it and
            // is covered by the snapshot (being) served at it; blocks of the fresh epoch
            // that raced ahead of our commit remain valid.  Do NOT re-request here — the
            // marker's presence means the flush we asked for is exactly this one.
            state.prepare_for_serve(ev.view.seq());
            JoinerAction::Prepared
        } else if !ev.view.joined.contains(&me)
            && !ev.view.departed.is_empty()
            && state.reserve_enabled
        {
            // A process departed while our transfer was in flight — possibly our source.
            // Whatever partial state we hold was encoded at a cut that can no longer be
            // completed exactly-once, so discard it and ask for a snapshot at a fresh cut.
            state.abandon_transfer(ev.view.seq());
            state.rerequests_sent += 1;
            JoinerAction::Rerequest
        } else {
            return;
        }
    };
    match action {
        JoinerAction::Completed | JoinerAction::Prepared => {}
        JoinerAction::Rerequest => {
            ctx.trace(format!(
                "transfer source departed before completion at view {}; re-requesting a \
                 snapshot at a fresh cut",
                ev.view.seq()
            ));
            let mut req = Message::new();
            req.set("xfer-rerequest", true);
            req.set("xfer-joiner", Address::Process(me));
            ctx.send(
                Address::Group(group),
                EntryId::GENERIC_XFER,
                req,
                ProtocolKind::Gbcast,
            );
        }
    }
}

/// Sending side: when this member is the oldest operational one, push its state to every
/// member the cut obliges it to serve — the view's fresh joiners plus any still-waiting
/// member whose re-request marker rides this cut.
fn sender_side(inner: &Rc<RefCell<Inner>>, ctx: &mut ToolCtx<'_>, ev: &ViewEvent, me: ProcessId) {
    let mut targets: Vec<ProcessId> = ev
        .view
        .joined
        .iter()
        .copied()
        .filter(|j| *j != me)
        .collect();
    let mut reserve_targets = 0u64;
    for g in &ev.gbcasts {
        let Some(requester) = rerequest_joiner(g) else {
            continue;
        };
        if requester != me && ev.view.contains(requester) && !targets.contains(&requester) {
            targets.push(requester);
            reserve_targets += 1;
        }
    }
    if targets.is_empty() || ev.view.rank_of(me) != Some(0) || !inner.borrow().ready {
        return;
    }
    let blocks = {
        let mut state = inner.borrow_mut();
        let mut encode = std::mem::replace(&mut state.encode, Box::new(Vec::new));
        drop(state);
        let blocks = encode();
        let mut state = inner.borrow_mut();
        state.encode = encode;
        state.transfers_served += 1;
        state.reserves_served += reserve_targets;
        blocks
    };
    let covered_wire = ev.covered.to_wire();
    let epoch = ev.view.seq();
    for joiner in &targets {
        let total = blocks.len().max(1);
        if blocks.is_empty() {
            // Even an empty state sends one terminating block so the joiner knows it is up
            // to date.
            let mut m = Message::new();
            m.set("xfer-last", true);
            m.set("xfer-epoch", epoch);
            m.set("xfer-covered", covered_wire.clone());
            ctx.send(
                Address::Process(*joiner),
                EntryId::GENERIC_XFER,
                m,
                ProtocolKind::Cbcast,
            );
            inner.borrow_mut().blocks_sent += 1;
            continue;
        }
        for (i, block) in blocks.iter().enumerate() {
            let mut m = block.clone();
            m.set("xfer-block", i as u64);
            m.set("xfer-last", i + 1 == total);
            m.set("xfer-epoch", epoch);
            m.set("xfer-covered", covered_wire.clone());
            ctx.send(
                Address::Process(*joiner),
                EntryId::GENERIC_XFER,
                m,
                ProtocolKind::Cbcast,
            );
            inner.borrow_mut().blocks_sent += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readiness_flags() {
        let t = StateTransfer::new(GroupId(1), Vec::new, |_ctx, _m| {});
        assert!(!t.is_ready());
        t.mark_ready();
        assert!(t.is_ready());
        assert_eq!(t.blocks_sent(), 0);
        assert_eq!(t.blocks_received(), 0);
        assert_eq!(t.transfers_served(), 0);
        assert_eq!(t.reserves_served(), 0);
        assert_eq!(t.rerequests_sent(), 0);
        assert_eq!(t.stale_blocks_discarded(), 0);
        assert_eq!(t.buffered_len(), 0);
        assert!(t.covered().is_none());
        assert!(!t.is_stalled());
        assert_eq!(t.stalled_events(), 0);
    }

    #[test]
    fn stall_detection_trips_once_per_quiet_period() {
        let t = StateTransfer::new(GroupId(1), Vec::new, |_ctx, _m| {}).with_stall_threshold(2);
        let mut inner = t.inner.borrow_mut();
        inner.pending.push((EntryId(3), Message::new()));
        assert!(!inner.note_buffer_growth(), "below threshold");
        inner.pending.push((EntryId(3), Message::new()));
        assert!(!inner.note_buffer_growth(), "first crossing arms the mark");
        inner.pending.push((EntryId(3), Message::new()));
        assert!(inner.note_buffer_growth(), "no progress since the mark");
        inner.pending.push((EntryId(3), Message::new()));
        assert!(!inner.note_buffer_growth(), "already reported");
        assert_eq!(inner.stalled_events, 1);
        // A received block resets the detector.
        inner.stall_mark = None;
        inner.stalled = false;
        inner.pending.push((EntryId(3), Message::new()));
        assert!(!inner.note_buffer_growth(), "re-arms after progress");
        inner.pending.push((EntryId(3), Message::new()));
        assert!(inner.note_buffer_growth(), "trips again if progress stops");
        assert_eq!(inner.stalled_events, 2);
    }

    #[test]
    fn buffer_limit_bookkeeping() {
        let t = StateTransfer::new(GroupId(1), Vec::new, |_ctx, _m| {}).with_buffer_limit(3);
        {
            let mut inner = t.inner.borrow_mut();
            assert_eq!(inner.max_buffered, 3);
            inner.last_view_seq = 5;
            for _ in 0..3 {
                inner.pending.push((EntryId(3), Message::new()));
            }
            // What the overflow branch does, without driving a full system: fence one
            // past the current view and drop everything.
            inner.buffer_overflows += 1;
            let fence = inner.last_view_seq + 1;
            inner.abandon_transfer(fence);
            assert!(inner.pending.is_empty());
            assert_eq!(
                inner.min_epoch, 6,
                "current-epoch stragglers are fenced too"
            );
        }
        assert_eq!(t.buffer_overflows(), 1);
        assert_eq!(t.buffered_len(), 0);
    }

    #[test]
    fn abandon_fences_off_the_dead_cut() {
        let t = StateTransfer::new(GroupId(1), Vec::new, |_ctx, _m| {});
        let mut inner = t.inner.borrow_mut();
        inner.pending.push((EntryId(3), Message::new()));
        inner.covered = Some(Frontier::new());
        inner.complete_at = Some(4);
        inner.abandon_transfer(7);
        assert!(inner.pending.is_empty());
        assert!(inner.covered.is_none());
        assert!(inner.complete_at.is_none());
        assert_eq!(inner.min_epoch, 7);
    }
}
