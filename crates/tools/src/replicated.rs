//! The replicated data tool (paper Section 3.6).
//!
//! "This tool provides a simple way to replicate data, reducing access time in read-intensive
//! settings and achieving low-overhead fault-tolerance. ...  If the process managing a
//! replicated data structure indicates that it requires a globally consistent request
//! ordering, like the FIFO queue we mentioned earlier, ABCAST is used to transmit reads and
//! updates.  If the data structure can be updated asynchronously or the caller has obtained
//! mutual exclusion, CBCAST is used instead.  In an optional logging mode, the tool records
//! updates on stable storage, making it possible to reload data after recovery from a crash."

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use vsync_core::{EntryId, GroupId, Message, ProcessBuilder, ProtocolKind, ToolCtx, Value};
use vsync_util::Result;

use crate::stable::StableStore;

/// Which multicast primitive carries updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOrdering {
    /// Updates travel by CBCAST: cheap and asynchronous; correct when each item has a single
    /// writer or writers hold a lock (paper Section 3.4).
    Causal,
    /// Updates travel by ABCAST: a globally consistent order, needed when several clients
    /// update the same item concurrently.
    Total,
}

struct Inner {
    group: GroupId,
    entry: EntryId,
    ordering: UpdateOrdering,
    items: BTreeMap<String, Value>,
    updates_applied: u64,
    log: Option<(Rc<dyn StableStore>, String)>,
}

/// A named collection of replicated items, kept consistent across the members of a group.
#[derive(Clone)]
pub struct ReplicatedData {
    inner: Rc<RefCell<Inner>>,
}

impl ReplicatedData {
    /// Creates a replicated data manager for `group`, receiving updates on `entry`.
    pub fn new(group: GroupId, entry: EntryId, ordering: UpdateOrdering) -> Self {
        ReplicatedData {
            inner: Rc::new(RefCell::new(Inner {
                group,
                entry,
                ordering,
                items: BTreeMap::new(),
                updates_applied: 0,
                log: None,
            })),
        }
    }

    /// Enables the logging mode: every applied update is appended to `store` under `key`.
    pub fn with_logging(self, store: Rc<dyn StableStore>, key: &str) -> Self {
        self.inner.borrow_mut().log = Some((store, key.to_owned()));
        self
    }

    /// Binds the update-application handler on a member process.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let inner = self.inner.clone();
        let entry = self.inner.borrow().entry;
        builder.on_entry(entry, move |_ctx, msg| {
            let mut state = inner.borrow_mut();
            state.apply(msg);
        });
    }

    /// Issues an update from inside a handler; every member (including the caller) applies it
    /// when the multicast is delivered.
    pub fn update(&self, ctx: &mut ToolCtx<'_>, item: &str, value: impl Into<Value>) {
        let (group, entry, proto) = {
            let state = self.inner.borrow();
            (
                state.group,
                state.entry,
                match state.ordering {
                    UpdateOrdering::Causal => ProtocolKind::Cbcast,
                    UpdateOrdering::Total => ProtocolKind::Abcast,
                },
            )
        };
        let msg = Message::new()
            .with("rd-item", item)
            .with("rd-value", value.into());
        ctx.send(group, entry, msg, proto);
    }

    /// Local, zero-cost read of an item (paper Table 1: "read-only access by manager: no cost").
    pub fn read(&self, item: &str) -> Option<Value> {
        self.inner.borrow().items.get(item).cloned()
    }

    /// Reads an item as an unsigned integer.
    pub fn read_u64(&self, item: &str) -> Option<u64> {
        self.read(item).and_then(|v| v.as_u64())
    }

    /// Reads an item as a string.
    pub fn read_string(&self, item: &str) -> Option<String> {
        self.read(item).and_then(|v| v.as_str().map(str::to_owned))
    }

    /// All item names currently present.
    pub fn item_names(&self) -> Vec<String> {
        self.inner.borrow().items.keys().cloned().collect()
    }

    /// Number of updates applied at this member.
    pub fn updates_applied(&self) -> u64 {
        self.inner.borrow().updates_applied
    }

    /// Sets an item locally without multicasting (initial load of the database before the
    /// group is distributed, or application of a transferred state).
    pub fn load_local(&self, item: &str, value: impl Into<Value>) {
        self.inner
            .borrow_mut()
            .items
            .insert(item.to_owned(), value.into());
    }

    /// Encodes the full state into a message (used by the state-transfer tool and by the
    /// checkpointing routine of the logging mode).
    pub fn snapshot(&self) -> Message {
        let state = self.inner.borrow();
        let mut m = Message::new();
        for (k, v) in &state.items {
            m.set(k, v.clone());
        }
        m
    }

    /// Replaces the local state with a snapshot produced by [`ReplicatedData::snapshot`].
    pub fn apply_snapshot(&self, snapshot: &Message) {
        let mut state = self.inner.borrow_mut();
        state.items.clear();
        for field in snapshot.iter() {
            if !field.name.starts_with('@') {
                state
                    .items
                    .insert(field.name.to_string(), field.value.clone());
            }
        }
    }

    /// Writes a checkpoint of the current state and truncates the update log.
    pub fn checkpoint(&self) -> Result<()> {
        let snapshot = self.snapshot();
        let state = self.inner.borrow();
        if let Some((store, key)) = &state.log {
            store.write_checkpoint(key, &snapshot)?;
            store.truncate_log(key)?;
        }
        Ok(())
    }

    /// Rebuilds the state from the checkpoint plus logged updates (total-failure recovery).
    /// Returns the number of log entries replayed.
    pub fn recover_from_log(&self) -> Result<u64> {
        let (store, key) = match &self.inner.borrow().log {
            Some((s, k)) => (s.clone(), k.clone()),
            None => return Ok(0),
        };
        if let Some(ckpt) = store.read_checkpoint(&key)? {
            self.apply_snapshot(&ckpt);
        }
        let entries = store.read_log(&key)?;
        let replayed = entries.len() as u64;
        let mut state = self.inner.borrow_mut();
        for e in entries {
            state.apply_without_logging(&e);
        }
        Ok(replayed)
    }
}

impl Inner {
    fn apply(&mut self, msg: &Message) {
        self.apply_without_logging(msg);
        if let Some((store, key)) = &self.log {
            let _ = store.append_log(key, msg);
        }
    }

    fn apply_without_logging(&mut self, msg: &Message) {
        let Some(item) = msg.get_str("rd-item") else {
            return;
        };
        let Some(value) = msg.get("rd-value") else {
            return;
        };
        self.items.insert(item.to_owned(), value.clone());
        self.updates_applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::MemoryStore;
    use vsync_util::SiteId;

    fn update_msg(item: &str, value: u64) -> Message {
        Message::new().with("rd-item", item).with("rd-value", value)
    }

    #[test]
    fn local_apply_and_read() {
        let rd = ReplicatedData::new(GroupId(1), EntryId(5), UpdateOrdering::Causal);
        rd.inner.borrow_mut().apply(&update_msg("price", 9000));
        assert_eq!(rd.read_u64("price"), Some(9000));
        assert_eq!(rd.read_u64("absent"), None);
        assert_eq!(rd.updates_applied(), 1);
        assert_eq!(rd.item_names(), vec!["price".to_owned()]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let rd = ReplicatedData::new(GroupId(1), EntryId(5), UpdateOrdering::Causal);
        rd.load_local("a", 1u64);
        rd.load_local("b", "two");
        let snap = rd.snapshot();
        let other = ReplicatedData::new(GroupId(1), EntryId(5), UpdateOrdering::Causal);
        other.apply_snapshot(&snap);
        assert_eq!(other.read_u64("a"), Some(1));
        assert_eq!(other.read_string("b"), Some("two".to_owned()));
    }

    #[test]
    fn logging_checkpoint_and_recovery() {
        let store: Rc<dyn StableStore> = Rc::new(MemoryStore::new());
        let rd = ReplicatedData::new(GroupId(1), EntryId(5), UpdateOrdering::Total)
            .with_logging(store.clone(), "svc");
        rd.inner.borrow_mut().apply(&update_msg("x", 1));
        rd.inner.borrow_mut().apply(&update_msg("y", 2));
        rd.checkpoint().unwrap();
        rd.inner.borrow_mut().apply(&update_msg("x", 3));

        // A fresh instance (total failure) recovers checkpoint + log.
        let recovered = ReplicatedData::new(GroupId(1), EntryId(5), UpdateOrdering::Total)
            .with_logging(store, "svc");
        let replayed = recovered.recover_from_log().unwrap();
        assert_eq!(replayed, 1, "one post-checkpoint update replayed");
        assert_eq!(recovered.read_u64("x"), Some(3));
        assert_eq!(recovered.read_u64("y"), Some(2));
    }

    #[test]
    fn ignores_malformed_updates() {
        let rd = ReplicatedData::new(GroupId(1), EntryId(5), UpdateOrdering::Causal);
        rd.inner.borrow_mut().apply(&Message::with_body(1u64));
        assert_eq!(rd.updates_applied(), 0);
        let _ = SiteId(0);
    }
}
