//! The recovery manager (paper Section 3.8).
//!
//! "This tool will restart processes after they fail, or if a site recovers.  The recovery
//! manager runs an algorithm similar to the one in \[Skeen\] to distinguish the total failure
//! of a process group from the partial failure of a member, and will advise the recovering
//! process either to restart the group (if it was one of the last to fail) or to wait for it
//! to restart elsewhere and then rejoin."
//!
//! Each registered member logs every view it observes to stable storage.  On recovery the
//! manager first checks whether the group is currently operational (then the answer is simply
//! *rejoin*); otherwise it consults the last logged view: a process that appears in it was
//! among the last to fail and may safely restart the group from its checkpoint and log, while
//! one that does not must wait for a last-to-fail member to restart the group first.

use std::rc::Rc;

use vsync_core::{Address, EntryId, GroupId, Message, ProcessBuilder, ProcessId, View};
use vsync_util::Result;

use crate::stable::StableStore;

/// The advice given to a recovering process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAdvice {
    /// The group is still operational somewhere: rejoin it (state transfer will catch us up).
    Rejoin,
    /// The whole group failed and we were among the last to fail: restart it from our
    /// checkpoint and log.
    Restart,
    /// The whole group failed but someone else failed after us: wait for that member (which
    /// has a more recent state) to restart the group, then rejoin.
    WaitForRestart,
}

/// What a [`RecoveryManager::replay`] reconstructed from the durable log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Delivered-message records re-applied through the caller's closure.
    pub messages: usize,
    /// View markers crossed (not re-applied — membership is re-learned by rejoining).
    pub views: usize,
}

/// The recovery manager for one service (process group) at one site.
#[derive(Clone)]
pub struct RecoveryManager {
    store: Rc<dyn StableStore>,
    service: String,
}

impl RecoveryManager {
    /// Creates a manager that records state for `service` in `store`.
    pub fn new(store: Rc<dyn StableStore>, service: &str) -> Self {
        RecoveryManager {
            store,
            service: service.to_owned(),
        }
    }

    fn key(&self) -> String {
        format!("recovery-{}", self.service)
    }

    fn log_key(&self) -> String {
        format!("recovery-log-{}", self.service)
    }

    // -- The durable delivery log ---------------------------------------------------------
    //
    // An append-only record of everything the member applied, interleaved with view
    // markers.  A site that fully dies (process *and* memory gone) replays this log to
    // rebuild its application state up to the last durable record, then rejoins the group;
    // state transfer covers the gap between the log's end and the rejoin cut.  Record
    // format, one message per record:
    //   { rec: "msg",  entry: u64, payload: <nested message> }   a delivered message
    //   { rec: "view", seq: u64 }                                a view marker

    /// Appends a delivered-message record.  Call from the application handler, after (or
    /// while) applying the message, so replay order equals delivery order.
    pub fn log_delivery(&self, entry: EntryId, payload: &Message) -> Result<()> {
        let mut rec = Message::new();
        rec.set("rec", "msg");
        rec.set("entry", u64::from(entry.0));
        rec.set("payload", payload.clone());
        self.store.append_log(&self.log_key(), &rec)
    }

    /// Appends a view marker, recording that everything logged before it was delivered
    /// no later than this view's cut.
    pub fn log_view_marker(&self, view: &View) -> Result<()> {
        let mut rec = Message::new();
        rec.set("rec", "view");
        rec.set("seq", view.seq());
        self.store.append_log(&self.log_key(), &rec)
    }

    /// Replays the durable log in append order, handing every delivered-message record to
    /// `apply` exactly as `log_delivery` recorded it.  View markers are counted but not
    /// applied: current membership is re-learned by rejoining, not from history.
    pub fn replay(&self, mut apply: impl FnMut(EntryId, &Message)) -> Result<ReplaySummary> {
        let mut summary = ReplaySummary::default();
        for rec in self.store.read_log(&self.log_key())? {
            match rec.get_str("rec") {
                Some("msg") => {
                    if let (Some(e), Some(payload)) = (rec.get_u64("entry"), rec.get_msg("payload"))
                    {
                        apply(EntryId(e as u8), payload);
                        summary.messages += 1;
                    }
                }
                Some("view") => summary.views += 1,
                _ => {}
            }
        }
        Ok(summary)
    }

    /// The sequence number of the last view marker in the durable log, if any.
    pub fn last_logged_view_seq(&self) -> Result<Option<u64>> {
        let mut last = None;
        for rec in self.store.read_log(&self.log_key())? {
            if rec.get_str("rec") == Some("view") {
                last = rec.get_u64("seq");
            }
        }
        Ok(last)
    }

    /// Discards the durable log (typically right after folding it into a checkpoint).
    pub fn truncate_log(&self) -> Result<()> {
        self.store.truncate_log(&self.log_key())
    }

    /// Records a view observed by a member (normally called from the attached monitor).
    pub fn record_view(&self, view: &View) -> Result<()> {
        let mut m = Message::new();
        m.set("view-seq", view.seq());
        m.set(
            "members",
            view.members
                .iter()
                .map(|p| Address::Process(*p))
                .collect::<Vec<_>>(),
        );
        self.store.write_checkpoint(&self.key(), &m)
    }

    /// Attaches view logging to a member process: each observed view updates the
    /// last-known-membership checkpoint (for [`advise`](Self::advise)) and appends a view
    /// marker to the durable log (for [`replay`](Self::replay)).
    pub fn attach_logging(&self, builder: &mut ProcessBuilder, group: GroupId) {
        let this = self.clone();
        builder.on_view_change(group, move |_ctx, ev| {
            let _ = this.record_view(&ev.view);
            let _ = this.log_view_marker(&ev.view);
        });
    }

    /// The membership of the last view this site observed before failing, if any.
    pub fn last_known_members(&self) -> Result<Vec<ProcessId>> {
        let Some(m) = self.store.read_checkpoint(&self.key())? else {
            return Ok(Vec::new());
        };
        Ok(m.get_addr_list("members")
            .unwrap_or_default()
            .iter()
            .filter_map(|a| a.as_process())
            .collect())
    }

    /// Advises a recovering process.  `group_operational` is whether the group currently has
    /// operational members (determined by asking the namespace / attempting a lookup).
    pub fn advise(&self, me: ProcessId, group_operational: bool) -> Result<RecoveryAdvice> {
        if group_operational {
            return Ok(RecoveryAdvice::Rejoin);
        }
        let last = self.last_known_members()?;
        if last.iter().any(|p| p.same_slot(&me)) {
            Ok(RecoveryAdvice::Restart)
        } else if last.is_empty() {
            // No record at all: nothing to wait for, restart fresh.
            Ok(RecoveryAdvice::Restart)
        } else {
            Ok(RecoveryAdvice::WaitForRestart)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::MemoryStore;
    use vsync_util::SiteId;

    fn p(site: u16) -> ProcessId {
        ProcessId::new(SiteId(site), 1)
    }

    fn manager() -> RecoveryManager {
        RecoveryManager::new(Rc::new(MemoryStore::new()), "twenty")
    }

    #[test]
    fn operational_group_means_rejoin() {
        let rm = manager();
        assert_eq!(rm.advise(p(0), true).unwrap(), RecoveryAdvice::Rejoin);
    }

    #[test]
    fn last_to_fail_restarts_the_group() {
        let rm = manager();
        let view = View::founding(GroupId(1), p(0)).successor(&[], &[p(1)]);
        rm.record_view(&view).unwrap();
        assert_eq!(rm.advise(p(0), false).unwrap(), RecoveryAdvice::Restart);
        assert_eq!(rm.advise(p(1), false).unwrap(), RecoveryAdvice::Restart);
    }

    #[test]
    fn earlier_casualties_wait_for_the_survivors() {
        let rm = manager();
        // Our site failed first; the view we logged last still contained us, but then the
        // survivors installed a view without us and logged *that* on their sites.  The check
        // below simulates the survivor's log advising *us*: the last view recorded there
        // excludes our process, so we must wait.
        let survivors_last_view = View::founding(GroupId(1), p(1)).successor(&[], &[p(2)]);
        rm.record_view(&survivors_last_view).unwrap();
        assert_eq!(
            rm.advise(p(0), false).unwrap(),
            RecoveryAdvice::WaitForRestart
        );
        assert_eq!(rm.advise(p(1), false).unwrap(), RecoveryAdvice::Restart);
    }

    #[test]
    fn recovery_recognises_new_incarnations_of_the_same_slot() {
        let rm = manager();
        let view = View::founding(GroupId(1), p(0));
        rm.record_view(&view).unwrap();
        let recovered_incarnation = p(0).next_incarnation();
        assert_eq!(
            rm.advise(recovered_incarnation, false).unwrap(),
            RecoveryAdvice::Restart
        );
    }

    #[test]
    fn no_history_means_fresh_restart() {
        let rm = manager();
        assert_eq!(rm.advise(p(3), false).unwrap(), RecoveryAdvice::Restart);
        assert!(rm.last_known_members().unwrap().is_empty());
    }

    #[test]
    fn replay_reapplies_deliveries_in_log_order() {
        let rm = manager();
        let v1 = View::founding(GroupId(1), p(0));
        rm.log_view_marker(&v1).unwrap();
        rm.log_delivery(EntryId(7), &Message::with_body(10u64))
            .unwrap();
        rm.log_delivery(EntryId(7), &Message::with_body(11u64))
            .unwrap();
        let v2 = v1.successor(&[], &[p(1)]);
        rm.log_view_marker(&v2).unwrap();
        rm.log_delivery(EntryId(8), &Message::with_body(12u64))
            .unwrap();

        let mut seen = Vec::new();
        let summary = rm
            .replay(|entry, payload| seen.push((entry.0, payload.get_u64("body").unwrap())))
            .unwrap();
        assert_eq!(
            summary,
            ReplaySummary {
                messages: 3,
                views: 2
            }
        );
        assert_eq!(seen, vec![(7, 10), (7, 11), (8, 12)]);
        assert_eq!(rm.last_logged_view_seq().unwrap(), Some(v2.seq()));

        rm.truncate_log().unwrap();
        assert_eq!(rm.replay(|_, _| {}).unwrap(), ReplaySummary::default());
        assert_eq!(rm.last_logged_view_seq().unwrap(), None);
    }

    #[test]
    fn replay_survives_a_file_store_reopen() {
        let dir = std::env::temp_dir().join(format!("vsync-replay-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = crate::stable::FileStore::new(&dir)
                .unwrap()
                .with_fsync_interval(1);
            let rm = RecoveryManager::new(Rc::new(store), "svc");
            rm.log_delivery(EntryId(1), &Message::with_body(41u64))
                .unwrap();
            rm.log_view_marker(&View::founding(GroupId(1), p(0)))
                .unwrap();
            rm.log_delivery(EntryId(1), &Message::with_body(42u64))
                .unwrap();
        }
        // A fresh store over the same root — the full site-death scenario — replays
        // everything the dead incarnation logged.
        let rm = RecoveryManager::new(Rc::new(crate::stable::FileStore::new(&dir).unwrap()), "svc");
        let mut bodies = Vec::new();
        let summary = rm
            .replay(|_, payload| bodies.push(payload.get_u64("body").unwrap()))
            .unwrap();
        assert_eq!(
            summary,
            ReplaySummary {
                messages: 2,
                views: 1
            }
        );
        assert_eq!(bodies, vec![41, 42]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
