//! The recovery manager (paper Section 3.8).
//!
//! "This tool will restart processes after they fail, or if a site recovers.  The recovery
//! manager runs an algorithm similar to the one in \[Skeen\] to distinguish the total failure
//! of a process group from the partial failure of a member, and will advise the recovering
//! process either to restart the group (if it was one of the last to fail) or to wait for it
//! to restart elsewhere and then rejoin."
//!
//! Each registered member logs every view it observes to stable storage.  On recovery the
//! manager first checks whether the group is currently operational (then the answer is simply
//! *rejoin*); otherwise it consults the last logged view: a process that appears in it was
//! among the last to fail and may safely restart the group from its checkpoint and log, while
//! one that does not must wait for a last-to-fail member to restart the group first.
//!
//! # Checkpoint-based log compaction
//!
//! The delivery log grows without bound on a long-lived member, so the manager can
//! periodically fold it into a **checkpoint**: the application's state encoded as the same
//! variable-sized blocks `StateTransfer` uses, written at a quiesced cut (a view-change
//! dispatch), after which every log record the checkpoint covers is truncated.
//! [`RecoveryManager::recover`] then replays the newest checkpoint first and the surviving
//! log tail after it.  Two fences keep this safe against races (the `xfer-epoch` pattern
//! from the state-transfer re-serve protocol):
//!
//! * **epoch fencing** — every checkpoint is tagged with the view seq of the cut it was
//!   encoded at; a compaction whose epoch does not exceed the stored checkpoint's is a
//!   straggler from a superseded cut and is rejected;
//! * **replay fencing** — compaction is refused while a replay is in progress, so the log
//!   being read can never be truncated under the reader.
//!
//! A crash *between* writing the checkpoint and truncating the log is also harmless:
//! every log record carries a monotone sequence number (`lsn`) and the checkpoint records
//! the highest lsn it folded, so replay skips log records the checkpoint already covers
//! instead of double-applying them.

use std::cell::Cell;
use std::rc::Rc;

use vsync_core::{
    Address, EntryId, Frontier, GroupId, LogSummary, Message, MsgId, ProcessBuilder, ProcessId,
    View,
};
use vsync_util::{Result, SiteId, VsError};

use crate::stable::StableStore;

/// The advice given to a recovering process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAdvice {
    /// The group is still operational somewhere: rejoin it (state transfer will catch us up).
    Rejoin,
    /// The whole group failed and we were among the last to fail: restart it from our
    /// checkpoint and log.
    Restart,
    /// The whole group failed but someone else failed after us: wait for that member (which
    /// has a more recent state) to restart the group, then rejoin.
    WaitForRestart,
}

/// What a [`RecoveryManager::replay`] / [`RecoveryManager::recover`] reconstructed from
/// durable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Delivered-message records re-applied through the caller's closure.
    pub messages: usize,
    /// View markers crossed (not re-applied — membership is re-learned by rejoining).
    pub views: usize,
    /// Checkpoint state blocks handed to the snapshot closure (0 when no checkpoint, or
    /// when replaying through [`RecoveryManager::replay`], which is log-only).
    pub snapshot_blocks: usize,
    /// Epoch (cut view seq) of the checkpoint the replay started from, if any.
    pub checkpoint_epoch: Option<u64>,
}

/// Shared mutable bookkeeping: every clone of a manager (handlers capture clones) must see
/// the same fences and counters.
#[derive(Default)]
struct Shared {
    /// Replay in progress: compaction is fenced off while set.
    replaying: Cell<bool>,
    /// Next log sequence number to stamp (lazily initialised from durable state).
    next_lsn: Cell<Option<u64>>,
    /// Compactions performed by this incarnation.
    compactions: Cell<u64>,
    /// Log records folded into checkpoints by this incarnation.
    records_compacted: Cell<u64>,
}

/// The recovery manager for one service (process group) at one site.
#[derive(Clone)]
pub struct RecoveryManager {
    store: Rc<dyn StableStore>,
    service: String,
    shared: Rc<Shared>,
}

impl RecoveryManager {
    /// Creates a manager that records state for `service` in `store`.
    pub fn new(store: Rc<dyn StableStore>, service: &str) -> Self {
        RecoveryManager {
            store,
            service: service.to_owned(),
            shared: Rc::new(Shared::default()),
        }
    }

    fn key(&self) -> String {
        format!("recovery-{}", self.service)
    }

    fn log_key(&self) -> String {
        format!("recovery-log-{}", self.service)
    }

    fn snap_key(&self) -> String {
        format!("recovery-snap-{}", self.service)
    }

    // -- The durable delivery log ---------------------------------------------------------
    //
    // An append-only record of everything the member applied, interleaved with view
    // markers.  A site that fully dies (process *and* memory gone) replays this log to
    // rebuild its application state up to the last durable record, then rejoins the group;
    // state transfer covers the gap between the log's end and the rejoin cut.  Record
    // format, one message per record (`lsn` is the monotone log sequence number the
    // compaction fence uses):
    //   { rec: "msg",  lsn: u64, entry: u64, payload: <nested message> }   a delivery
    //   { rec: "view", lsn: u64, seq: u64 }                                a view marker

    /// Allocates the next log sequence number, scanning durable state once on first use
    /// (a recovered incarnation must continue the dead one's numbering).
    fn alloc_lsn(&self) -> Result<u64> {
        let next = match self.shared.next_lsn.get() {
            Some(n) => n,
            None => {
                let mut max = self.read_snapshot()?.map(|s| s.folded_lsn).unwrap_or(0);
                for rec in self.store.read_log(&self.log_key())? {
                    max = max.max(rec.get_u64("lsn").unwrap_or(0));
                }
                max + 1
            }
        };
        self.shared.next_lsn.set(Some(next + 1));
        Ok(next)
    }

    /// Appends a delivered-message record.  Call from the application handler, after (or
    /// while) applying the message, so replay order equals delivery order.
    pub fn log_delivery(&self, entry: EntryId, payload: &Message) -> Result<()> {
        let mut rec = Message::new();
        rec.set("rec", "msg");
        rec.set("lsn", self.alloc_lsn()?);
        rec.set("entry", u64::from(entry.0));
        rec.set("payload", payload.clone());
        self.store.append_log(&self.log_key(), &rec)
    }

    /// Appends a view marker, recording that everything logged before it was delivered
    /// no later than this view's cut.
    pub fn log_view_marker(&self, view: &View) -> Result<()> {
        let mut rec = Message::new();
        rec.set("rec", "view");
        rec.set("lsn", self.alloc_lsn()?);
        rec.set("seq", view.seq());
        self.store.append_log(&self.log_key(), &rec)
    }

    /// Replays the durable **log only**, in append order, handing every delivered-message
    /// record to `apply` exactly as `log_delivery` recorded it.  View markers are counted
    /// but not applied: current membership is re-learned by rejoining, not from history.
    ///
    /// If compaction is in use, call [`recover`](Self::recover) instead — this method
    /// skips records a checkpoint already covers but does not apply the checkpoint itself.
    pub fn replay(&self, mut apply: impl FnMut(EntryId, &Message)) -> Result<ReplaySummary> {
        self.recover_inner(None::<fn(&Message)>, &mut apply)
    }

    /// Full recovery: applies the newest checkpoint's state blocks through `snapshot`,
    /// then replays the surviving log tail through `apply`.  This is the restart path of a
    /// member whose log is compacted — together the two closures rebuild exactly the state
    /// the dead incarnation had durably recorded.
    pub fn recover(
        &self,
        mut snapshot: impl FnMut(&Message),
        mut apply: impl FnMut(EntryId, &Message),
    ) -> Result<ReplaySummary> {
        self.recover_inner(Some(&mut snapshot), &mut apply)
    }

    fn recover_inner(
        &self,
        mut snapshot: Option<impl FnMut(&Message)>,
        apply: &mut impl FnMut(EntryId, &Message),
    ) -> Result<ReplaySummary> {
        // Replay fence: a compaction racing this replay could truncate the log under us.
        self.shared.replaying.set(true);
        let result = (|| {
            let mut summary = ReplaySummary::default();
            let mut folded_lsn = 0;
            if let Some(snap) = self.read_snapshot()? {
                folded_lsn = snap.folded_lsn;
                summary.checkpoint_epoch = Some(snap.epoch);
                if let Some(snapshot) = snapshot.as_mut() {
                    for block in &snap.blocks {
                        snapshot(block);
                        summary.snapshot_blocks += 1;
                    }
                }
            }
            for rec in self.store.read_log(&self.log_key())? {
                // Records the checkpoint already folded linger only when a crash hit the
                // window between checkpoint write and log truncation; skipping them is
                // what keeps that window exactly-once.
                if rec.get_u64("lsn").unwrap_or(0) <= folded_lsn {
                    continue;
                }
                match rec.get_str("rec") {
                    Some("msg") => {
                        if let (Some(e), Some(payload)) =
                            (rec.get_u64("entry"), rec.get_msg("payload"))
                        {
                            apply(EntryId(e as u8), payload);
                            summary.messages += 1;
                        }
                    }
                    Some("view") => summary.views += 1,
                    _ => {}
                }
            }
            Ok(summary)
        })();
        self.shared.replaying.set(false);
        result
    }

    /// The sequence number of the last view marker in the durable log, if any.
    pub fn last_logged_view_seq(&self) -> Result<Option<u64>> {
        let mut last = None;
        for rec in self.store.read_log(&self.log_key())? {
            if rec.get_str("rec") == Some("view") {
                last = rec.get_u64("seq");
            }
        }
        Ok(last)
    }

    /// Number of records currently in the durable log (the compaction trigger input).
    pub fn log_record_count(&self) -> Result<usize> {
        Ok(self.store.read_log(&self.log_key())?.len())
    }

    /// Discards the durable log (typically right after folding it into a checkpoint).
    pub fn truncate_log(&self) -> Result<()> {
        self.store.truncate_log(&self.log_key())
    }

    /// Discards **all** durable state for this service: log, checkpoint and membership
    /// record.  A reform *follower* calls this before rejoining — its divergent tail lost
    /// the election, and the rejoin's state transfer plus fresh logging re-establish
    /// durability from the reformed group's history.
    pub fn discard(&self) -> Result<()> {
        self.store.truncate_log(&self.log_key())?;
        self.store
            .write_checkpoint(&self.snap_key(), &Message::new())?;
        self.shared.next_lsn.set(Some(1));
        Ok(())
    }

    // -- Checkpoint-based compaction ------------------------------------------------------

    /// Folds everything currently in the log into a checkpoint taken at the view cut
    /// `epoch`, then truncates the log.  `blocks` is the application state encoded as the
    /// same variable-sized blocks `StateTransfer` produces, captured **at that cut** (call
    /// from a view-change handler, or use [`attach_compaction`](Self::attach_compaction)).
    ///
    /// Returns `Ok(false)` without touching storage when fenced off: a stale epoch (a
    /// straggler compaction from a superseded cut) or an in-flight replay.
    pub fn compact(&self, epoch: u64, blocks: &[Message]) -> Result<bool> {
        if self.shared.replaying.get() {
            return Ok(false);
        }
        let prev = self.read_snapshot()?;
        if let Some(prev) = &prev {
            if epoch <= prev.epoch {
                return Ok(false);
            }
        }
        // Accumulate the checkpoint's coverage: the previous checkpoint's totals plus
        // everything the log added since.
        let (mut frontier, mut messages, mut views, mut folded_lsn) = match &prev {
            Some(p) => (p.frontier.clone(), p.messages, p.views, p.folded_lsn),
            None => (Frontier::new(), 0, 0, 0),
        };
        let log = self.store.read_log(&self.log_key())?;
        let mut folded = 0u64;
        for rec in &log {
            let lsn = rec.get_u64("lsn").unwrap_or(0);
            if lsn <= folded_lsn {
                continue;
            }
            folded_lsn = folded_lsn.max(lsn);
            folded += 1;
            match rec.get_str("rec") {
                Some("msg") => {
                    messages += 1;
                    if let Some(origin) = rec.get_msg("payload").and_then(Message::sender) {
                        observe_count(&mut frontier, origin.site);
                    }
                }
                Some("view") => views += 1,
                _ => {}
            }
        }
        let snap = Snapshot {
            epoch,
            folded_lsn,
            frontier,
            messages,
            views,
            blocks: blocks.to_vec(),
        };
        // Checkpoint first, truncate second: if we die between the two, replay skips the
        // lingering records by lsn instead of double-applying them.
        self.store
            .write_checkpoint(&self.snap_key(), &snap.encode())?;
        self.store.truncate_log(&self.log_key())?;
        self.shared
            .compactions
            .set(self.shared.compactions.get() + 1);
        self.shared
            .records_compacted
            .set(self.shared.records_compacted.get() + folded);
        Ok(true)
    }

    /// Attaches automatic compaction to a member process: at every view change (a
    /// quiesced cut — exactly where `StateTransfer` encodes snapshots), if the log has
    /// reached `threshold` records, the state returned by `encode` is checkpointed at the
    /// new view's seq and the log is truncated.  Attach **after**
    /// [`attach_logging`](Self::attach_logging) so the cut's own view marker is folded.
    pub fn attach_compaction(
        &self,
        builder: &mut ProcessBuilder,
        group: GroupId,
        threshold: usize,
        mut encode: impl FnMut() -> Vec<Message> + 'static,
    ) {
        let this = self.clone();
        builder.on_view_change(group, move |ctx, ev| {
            let due = this.log_record_count().map(|n| n >= threshold);
            if due.unwrap_or(false) {
                match this.compact(ev.view.seq(), &encode()) {
                    Ok(true) => ctx.trace(format!(
                        "CompactionCheckpoint: service {} epoch {}",
                        this.service,
                        ev.view.seq()
                    )),
                    Ok(false) => ctx.trace(format!(
                        "CompactionFenced: service {} epoch {}",
                        this.service,
                        ev.view.seq()
                    )),
                    Err(e) => ctx.trace(format!("CompactionFailed: {e}")),
                }
            }
        });
    }

    /// Compactions performed by this incarnation (observability for tests/benches).
    pub fn compactions(&self) -> u64 {
        self.shared.compactions.get()
    }

    /// Log records folded into checkpoints by this incarnation.
    pub fn records_compacted(&self) -> u64 {
        self.shared.records_compacted.get()
    }

    fn read_snapshot(&self) -> Result<Option<Snapshot>> {
        match self.store.read_checkpoint(&self.snap_key())? {
            Some(m) => Snapshot::decode(&m),
            None => Ok(None),
        }
    }

    // -- Reform support -------------------------------------------------------------------

    /// Summarises what this site's durable state covers, as the reform election's input:
    /// the highest view seq recorded anywhere (checkpoint epoch, log view markers, or the
    /// membership record), the per-origin delivery frontier (checkpoint + log), and the
    /// rank `me` held in the last recorded view.  `None` if nothing durable exists — a
    /// site with no log has nothing to offer an election.
    pub fn log_summary(&self, me: ProcessId) -> Result<Option<LogSummary>> {
        let snap = self.read_snapshot()?;
        let mut view_seq = snap.as_ref().map(|s| s.epoch);
        let mut frontier = snap.map(|s| s.frontier).unwrap_or_default();
        let mut any = !frontier.is_empty() || view_seq.is_some();
        for rec in self.store.read_log(&self.log_key())? {
            any = true;
            match rec.get_str("rec") {
                Some("view") => {
                    if let Some(seq) = rec.get_u64("seq") {
                        view_seq = Some(view_seq.unwrap_or(0).max(seq));
                    }
                }
                Some("msg") => {
                    if let Some(origin) = rec.get_msg("payload").and_then(Message::sender) {
                        observe_count(&mut frontier, origin.site);
                    }
                }
                _ => {}
            }
        }
        // The membership record is written on every view change (possibly later than the
        // last fsync'd log marker) — fold it into both the seq and the rank.
        let mut rank = u64::MAX;
        if let Some(m) = self.store.read_checkpoint(&self.key())? {
            if let Some(seq) = m.get_u64("view-seq") {
                any = true;
                view_seq = Some(view_seq.unwrap_or(0).max(seq));
            }
            let members: Vec<ProcessId> = m
                .get_addr_list("members")
                .unwrap_or_default()
                .iter()
                .filter_map(|a| a.as_process())
                .collect();
            if let Some(r) = members.iter().position(|p| p.same_slot(&me)) {
                rank = r as u64;
            }
        }
        if !any {
            return Ok(None);
        }
        Ok(Some(LogSummary {
            site: me.site,
            view_seq: view_seq.unwrap_or(0),
            covered: frontier,
            rank,
        }))
    }

    // -- Membership record + advice -------------------------------------------------------

    /// Records a view observed by a member (normally called from the attached monitor).
    pub fn record_view(&self, view: &View) -> Result<()> {
        let mut m = Message::new();
        m.set("view-seq", view.seq());
        m.set(
            "members",
            view.members
                .iter()
                .map(|p| Address::Process(*p))
                .collect::<Vec<_>>(),
        );
        self.store.write_checkpoint(&self.key(), &m)
    }

    /// Attaches view logging to a member process: each observed view updates the
    /// last-known-membership checkpoint (for [`advise`](Self::advise)) and appends a view
    /// marker to the durable log (for [`replay`](Self::replay)).
    pub fn attach_logging(&self, builder: &mut ProcessBuilder, group: GroupId) {
        let this = self.clone();
        builder.on_view_change(group, move |_ctx, ev| {
            let _ = this.record_view(&ev.view);
            let _ = this.log_view_marker(&ev.view);
        });
    }

    /// The membership of the last view this site observed before failing, if any.
    pub fn last_known_members(&self) -> Result<Vec<ProcessId>> {
        let Some(m) = self.store.read_checkpoint(&self.key())? else {
            return Ok(Vec::new());
        };
        Ok(m.get_addr_list("members")
            .unwrap_or_default()
            .iter()
            .filter_map(|a| a.as_process())
            .collect())
    }

    /// The sites of the last view this site observed before failing: the reform
    /// election's participant set (only their logs could possibly dominate ours).
    pub fn last_known_sites(&self) -> Result<Vec<SiteId>> {
        let mut sites = Vec::new();
        for p in self.last_known_members()? {
            if !sites.contains(&p.site) {
                sites.push(p.site);
            }
        }
        Ok(sites)
    }

    /// Advises a recovering process.  `group_operational` is whether the group currently has
    /// operational members (determined by asking the namespace / attempting a lookup).
    pub fn advise(&self, me: ProcessId, group_operational: bool) -> Result<RecoveryAdvice> {
        if group_operational {
            return Ok(RecoveryAdvice::Rejoin);
        }
        let last = self.last_known_members()?;
        if last.iter().any(|p| p.same_slot(&me)) {
            Ok(RecoveryAdvice::Restart)
        } else if last.is_empty() {
            // No record at all: nothing to wait for, restart fresh.
            Ok(RecoveryAdvice::Restart)
        } else {
            Ok(RecoveryAdvice::WaitForRestart)
        }
    }
}

/// Bumps `frontier`'s per-origin count for `origin` by one.  Delivery counts stand in for
/// protocol sequence numbers (which the application layer never sees): deliveries from one
/// origin are totally ordered at every member, so "how many did this log durably record
/// from each origin" is a consistent cross-log comparison for the election tie-break.
fn observe_count(frontier: &mut Frontier, origin: SiteId) {
    let next = frontier
        .entries()
        .iter()
        .find(|(s, _)| *s == origin)
        .map(|(_, n)| n + 1)
        .unwrap_or(1);
    frontier.observe(MsgId::new(origin, next));
}

/// The durable checkpoint record: `{ epoch, folded-lsn, frontier, msgs, views, blocks }`
/// with the state blocks packed as `n` + `b{i}` nested messages.
struct Snapshot {
    epoch: u64,
    folded_lsn: u64,
    frontier: Frontier,
    messages: usize,
    views: usize,
    blocks: Vec<Message>,
}

impl Snapshot {
    fn encode(&self) -> Message {
        let mut m = Message::with_field_capacity(self.blocks.len() + 6);
        m.set("epoch", self.epoch);
        m.set("folded-lsn", self.folded_lsn);
        m.set("frontier", self.frontier.to_wire());
        m.set("msgs", self.messages as u64);
        m.set("views", self.views as u64);
        m.set("n", self.blocks.len() as u64);
        for (i, b) in self.blocks.iter().enumerate() {
            m.set(&format!("b{i}"), b.clone());
        }
        m
    }

    /// `Ok(None)` for an empty record (how [`RecoveryManager::discard`] erases a
    /// checkpoint — stores have no checkpoint-delete primitive).
    fn decode(m: &Message) -> Result<Option<Snapshot>> {
        let Some(epoch) = m.get_u64("epoch") else {
            return Ok(None);
        };
        let n = m.get_u64("n").unwrap_or(0) as usize;
        let mut blocks = Vec::with_capacity(n);
        for i in 0..n {
            let b = m
                .get_msg(&format!("b{i}"))
                .ok_or_else(|| VsError::CodecError(format!("checkpoint missing block b{i}")))?;
            blocks.push(b.clone());
        }
        Ok(Some(Snapshot {
            epoch,
            folded_lsn: m.get_u64("folded-lsn").unwrap_or(0),
            frontier: Frontier::from_wire(m.get_u64_list("frontier").unwrap_or_default()),
            messages: m.get_u64("msgs").unwrap_or(0) as usize,
            views: m.get_u64("views").unwrap_or(0) as usize,
            blocks,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::MemoryStore;
    use vsync_util::{GroupId, SiteId};

    fn p(site: u16) -> ProcessId {
        ProcessId::new(SiteId(site), 1)
    }

    fn manager() -> RecoveryManager {
        RecoveryManager::new(Rc::new(MemoryStore::new()), "twenty")
    }

    fn delivery(origin: u16, body: u64) -> Message {
        let mut m = Message::with_body(body);
        m.set_sender(p(origin));
        m
    }

    #[test]
    fn operational_group_means_rejoin() {
        let rm = manager();
        assert_eq!(rm.advise(p(0), true).unwrap(), RecoveryAdvice::Rejoin);
    }

    #[test]
    fn last_to_fail_restarts_the_group() {
        let rm = manager();
        let view = View::founding(GroupId(1), p(0)).successor(&[], &[p(1)]);
        rm.record_view(&view).unwrap();
        assert_eq!(rm.advise(p(0), false).unwrap(), RecoveryAdvice::Restart);
        assert_eq!(rm.advise(p(1), false).unwrap(), RecoveryAdvice::Restart);
    }

    #[test]
    fn earlier_casualties_wait_for_the_survivors() {
        let rm = manager();
        // Our site failed first; the view we logged last still contained us, but then the
        // survivors installed a view without us and logged *that* on their sites.  The check
        // below simulates the survivor's log advising *us*: the last view recorded there
        // excludes our process, so we must wait.
        let survivors_last_view = View::founding(GroupId(1), p(1)).successor(&[], &[p(2)]);
        rm.record_view(&survivors_last_view).unwrap();
        assert_eq!(
            rm.advise(p(0), false).unwrap(),
            RecoveryAdvice::WaitForRestart
        );
        assert_eq!(rm.advise(p(1), false).unwrap(), RecoveryAdvice::Restart);
    }

    #[test]
    fn recovery_recognises_new_incarnations_of_the_same_slot() {
        let rm = manager();
        let view = View::founding(GroupId(1), p(0));
        rm.record_view(&view).unwrap();
        let recovered_incarnation = p(0).next_incarnation();
        assert_eq!(
            rm.advise(recovered_incarnation, false).unwrap(),
            RecoveryAdvice::Restart
        );
    }

    #[test]
    fn no_history_means_fresh_restart() {
        let rm = manager();
        assert_eq!(rm.advise(p(3), false).unwrap(), RecoveryAdvice::Restart);
        assert!(rm.last_known_members().unwrap().is_empty());
        assert!(rm.log_summary(p(3)).unwrap().is_none());
    }

    #[test]
    fn replay_reapplies_deliveries_in_log_order() {
        let rm = manager();
        let v1 = View::founding(GroupId(1), p(0));
        rm.log_view_marker(&v1).unwrap();
        rm.log_delivery(EntryId(7), &Message::with_body(10u64))
            .unwrap();
        rm.log_delivery(EntryId(7), &Message::with_body(11u64))
            .unwrap();
        let v2 = v1.successor(&[], &[p(1)]);
        rm.log_view_marker(&v2).unwrap();
        rm.log_delivery(EntryId(8), &Message::with_body(12u64))
            .unwrap();

        let mut seen = Vec::new();
        let summary = rm
            .replay(|entry, payload| seen.push((entry.0, payload.get_u64("body").unwrap())))
            .unwrap();
        assert_eq!(
            summary,
            ReplaySummary {
                messages: 3,
                views: 2,
                ..ReplaySummary::default()
            }
        );
        assert_eq!(seen, vec![(7, 10), (7, 11), (8, 12)]);
        assert_eq!(rm.last_logged_view_seq().unwrap(), Some(v2.seq()));

        rm.truncate_log().unwrap();
        assert_eq!(rm.replay(|_, _| {}).unwrap(), ReplaySummary::default());
        assert_eq!(rm.last_logged_view_seq().unwrap(), None);
    }

    #[test]
    fn replay_survives_a_file_store_reopen() {
        let dir = std::env::temp_dir().join(format!("vsync-replay-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = crate::stable::FileStore::new(&dir)
                .unwrap()
                .with_fsync_interval(1);
            let rm = RecoveryManager::new(Rc::new(store), "svc");
            rm.log_delivery(EntryId(1), &Message::with_body(41u64))
                .unwrap();
            rm.log_view_marker(&View::founding(GroupId(1), p(0)))
                .unwrap();
            rm.log_delivery(EntryId(1), &Message::with_body(42u64))
                .unwrap();
        }
        // A fresh store over the same root — the full site-death scenario — replays
        // everything the dead incarnation logged.
        let rm = RecoveryManager::new(Rc::new(crate::stable::FileStore::new(&dir).unwrap()), "svc");
        let mut bodies = Vec::new();
        let summary = rm
            .replay(|_, payload| bodies.push(payload.get_u64("body").unwrap()))
            .unwrap();
        assert_eq!(
            summary,
            ReplaySummary {
                messages: 2,
                views: 1,
                ..ReplaySummary::default()
            }
        );
        assert_eq!(bodies, vec![41, 42]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_truncates_and_recover_rebuilds_the_same_state() {
        // The pinned equivalence: a compacted manager recovers to exactly the state an
        // uncompacted one replays, with the partition snapshot + tail == everything.
        let rm = manager();
        let plain = manager();
        let v1 = View::founding(GroupId(1), p(0));
        for (body, origin) in [(1u64, 0u16), (2, 1), (3, 0)] {
            rm.log_delivery(EntryId(7), &delivery(origin, body))
                .unwrap();
            plain
                .log_delivery(EntryId(7), &delivery(origin, body))
                .unwrap();
        }
        rm.log_view_marker(&v1).unwrap();
        plain.log_view_marker(&v1).unwrap();

        // State at the cut = fold of the log so far, encoded as one block per item (the
        // StateTransfer encoding contract).
        let blocks: Vec<Message> = [(1u64, 0u16), (2, 1), (3, 0)]
            .iter()
            .map(|(b, o)| delivery(*o, *b))
            .collect();
        assert!(rm.compact(v1.seq(), &blocks).unwrap());
        assert_eq!(rm.compactions(), 1);
        assert_eq!(rm.records_compacted(), 4);
        assert_eq!(rm.log_record_count().unwrap(), 0, "log truncated");

        // Both incarnations keep delivering after the checkpoint.
        for (body, origin) in [(4u64, 1u16), (5, 1)] {
            rm.log_delivery(EntryId(7), &delivery(origin, body))
                .unwrap();
            plain
                .log_delivery(EntryId(7), &delivery(origin, body))
                .unwrap();
        }

        let compacted_state = std::cell::RefCell::new(Vec::new());
        let s = rm
            .recover(
                |b| {
                    compacted_state
                        .borrow_mut()
                        .push(b.get_u64("body").unwrap())
                },
                |_, m| {
                    compacted_state
                        .borrow_mut()
                        .push(m.get_u64("body").unwrap())
                },
            )
            .unwrap();
        let compacted_state = compacted_state.into_inner();
        assert_eq!(s.snapshot_blocks, 3);
        assert_eq!(s.messages, 2);
        assert_eq!(s.checkpoint_epoch, Some(v1.seq()));

        let mut plain_state = Vec::new();
        plain
            .replay(|_, m| plain_state.push(m.get_u64("body").unwrap()))
            .unwrap();
        assert_eq!(compacted_state, plain_state);
        assert_eq!(compacted_state, vec![1, 2, 3, 4, 5]);

        // The summaries agree too: compaction must not change what the log claims.
        let a = rm.log_summary(p(0)).unwrap().unwrap();
        let b = plain.log_summary(p(0)).unwrap().unwrap();
        assert_eq!(a.view_seq, b.view_seq);
        assert_eq!(a.covered, b.covered);
    }

    #[test]
    fn stale_epoch_and_inflight_replay_are_fenced() {
        let rm = manager();
        rm.log_delivery(EntryId(1), &delivery(0, 1)).unwrap();
        assert!(rm.compact(5, &[Message::with_body(1u64)]).unwrap());
        rm.log_delivery(EntryId(1), &delivery(0, 2)).unwrap();
        // A straggler from a superseded cut must not clobber the newer checkpoint.
        assert!(!rm.compact(5, &[]).unwrap());
        assert!(!rm.compact(4, &[]).unwrap());
        assert_eq!(rm.compactions(), 1);
        // Compaction during a replay is refused (the log is being read).
        let rm2 = rm.clone();
        let mut fenced = None;
        rm.recover(
            |_| {},
            |_, _| {
                if fenced.is_none() {
                    fenced = Some(rm2.compact(9, &[]).unwrap());
                }
            },
        )
        .unwrap();
        assert_eq!(fenced, Some(false));
        // After the replay the same compaction goes through.
        assert!(rm.compact(9, &[Message::with_body(9u64)]).unwrap());
    }

    #[test]
    fn crash_between_checkpoint_and_truncate_stays_exactly_once() {
        // Simulate the window: write the checkpoint a compaction would write, but leave
        // the log untouched (as if we died before truncate_log ran).
        let store: Rc<dyn StableStore> = Rc::new(MemoryStore::new());
        let rm = RecoveryManager::new(store.clone(), "svc");
        rm.log_delivery(EntryId(1), &delivery(0, 1)).unwrap();
        rm.log_delivery(EntryId(1), &delivery(0, 2)).unwrap();
        let snap = Snapshot {
            epoch: 3,
            folded_lsn: 2, // both records folded
            frontier: Frontier::new(),
            messages: 2,
            views: 0,
            blocks: vec![delivery(0, 1), delivery(0, 2)],
        };
        store
            .write_checkpoint("recovery-snap-svc", &snap.encode())
            .unwrap();
        // Post-window deliveries continue the lsn line.
        let rm = RecoveryManager::new(store, "svc");
        rm.log_delivery(EntryId(1), &delivery(0, 3)).unwrap();
        let state = std::cell::RefCell::new(Vec::new());
        let s = rm
            .recover(
                |b| state.borrow_mut().push(b.get_u64("body").unwrap()),
                |_, m| state.borrow_mut().push(m.get_u64("body").unwrap()),
            )
            .unwrap();
        let state = state.into_inner();
        assert_eq!(state, vec![1, 2, 3], "folded records must not double-apply");
        assert_eq!(s.snapshot_blocks, 2);
        assert_eq!(s.messages, 1);
    }

    #[test]
    fn log_summary_reports_seq_frontier_and_rank() {
        let rm = manager();
        let v = View::founding(GroupId(1), p(1)).successor(&[], &[p(0)]);
        rm.record_view(&v).unwrap();
        rm.log_view_marker(&v).unwrap();
        rm.log_delivery(EntryId(1), &delivery(1, 10)).unwrap();
        rm.log_delivery(EntryId(1), &delivery(1, 11)).unwrap();
        rm.log_delivery(EntryId(1), &delivery(0, 12)).unwrap();
        let s = rm.log_summary(p(0)).unwrap().unwrap();
        assert_eq!(s.site, SiteId(0));
        assert_eq!(s.view_seq, v.seq());
        assert_eq!(s.rank, 1, "p(0) is the younger member of v");
        assert_eq!(
            s.covered.entries(),
            &[(SiteId(0), 1), (SiteId(1), 2)],
            "per-origin delivery counts"
        );
        // A summary survives compaction: the checkpoint carries the folded frontier.
        assert!(rm.compact(v.seq() + 1, &[]).unwrap());
        let s2 = rm.log_summary(p(0)).unwrap().unwrap();
        assert_eq!(s2.covered, s.covered);
        assert_eq!(s2.view_seq, v.seq() + 1);
    }

    #[test]
    fn discard_erases_all_durable_state() {
        let rm = manager();
        rm.log_delivery(EntryId(1), &delivery(0, 1)).unwrap();
        rm.compact(2, &[Message::with_body(1u64)]).unwrap();
        rm.log_delivery(EntryId(1), &delivery(0, 2)).unwrap();
        rm.discard().unwrap();
        assert_eq!(
            rm.recover(|_| {}, |_, _| {}).unwrap(),
            ReplaySummary::default()
        );
        // Fresh logging after a discard starts a clean history.
        rm.log_delivery(EntryId(1), &delivery(0, 7)).unwrap();
        let mut state = Vec::new();
        rm.recover(|_| {}, |_, m| state.push(m.get_u64("body").unwrap()))
            .unwrap();
        assert_eq!(state, vec![7]);
    }
}
