//! The recovery manager (paper Section 3.8).
//!
//! "This tool will restart processes after they fail, or if a site recovers.  The recovery
//! manager runs an algorithm similar to the one in \[Skeen\] to distinguish the total failure
//! of a process group from the partial failure of a member, and will advise the recovering
//! process either to restart the group (if it was one of the last to fail) or to wait for it
//! to restart elsewhere and then rejoin."
//!
//! Each registered member logs every view it observes to stable storage.  On recovery the
//! manager first checks whether the group is currently operational (then the answer is simply
//! *rejoin*); otherwise it consults the last logged view: a process that appears in it was
//! among the last to fail and may safely restart the group from its checkpoint and log, while
//! one that does not must wait for a last-to-fail member to restart the group first.

use std::rc::Rc;

use vsync_core::{Address, GroupId, Message, ProcessBuilder, ProcessId, View};
use vsync_util::Result;

use crate::stable::StableStore;

/// The advice given to a recovering process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAdvice {
    /// The group is still operational somewhere: rejoin it (state transfer will catch us up).
    Rejoin,
    /// The whole group failed and we were among the last to fail: restart it from our
    /// checkpoint and log.
    Restart,
    /// The whole group failed but someone else failed after us: wait for that member (which
    /// has a more recent state) to restart the group, then rejoin.
    WaitForRestart,
}

/// The recovery manager for one service (process group) at one site.
#[derive(Clone)]
pub struct RecoveryManager {
    store: Rc<dyn StableStore>,
    service: String,
}

impl RecoveryManager {
    /// Creates a manager that records state for `service` in `store`.
    pub fn new(store: Rc<dyn StableStore>, service: &str) -> Self {
        RecoveryManager {
            store,
            service: service.to_owned(),
        }
    }

    fn key(&self) -> String {
        format!("recovery-{}", self.service)
    }

    /// Records a view observed by a member (normally called from the attached monitor).
    pub fn record_view(&self, view: &View) -> Result<()> {
        let mut m = Message::new();
        m.set("view-seq", view.seq());
        m.set(
            "members",
            view.members
                .iter()
                .map(|p| Address::Process(*p))
                .collect::<Vec<_>>(),
        );
        self.store.write_checkpoint(&self.key(), &m)
    }

    /// Attaches view logging to a member process.
    pub fn attach_logging(&self, builder: &mut ProcessBuilder, group: GroupId) {
        let this = self.clone();
        builder.on_view_change(group, move |_ctx, ev| {
            let _ = this.record_view(&ev.view);
        });
    }

    /// The membership of the last view this site observed before failing, if any.
    pub fn last_known_members(&self) -> Result<Vec<ProcessId>> {
        let Some(m) = self.store.read_checkpoint(&self.key())? else {
            return Ok(Vec::new());
        };
        Ok(m.get_addr_list("members")
            .unwrap_or_default()
            .iter()
            .filter_map(|a| a.as_process())
            .collect())
    }

    /// Advises a recovering process.  `group_operational` is whether the group currently has
    /// operational members (determined by asking the namespace / attempting a lookup).
    pub fn advise(&self, me: ProcessId, group_operational: bool) -> Result<RecoveryAdvice> {
        if group_operational {
            return Ok(RecoveryAdvice::Rejoin);
        }
        let last = self.last_known_members()?;
        if last.iter().any(|p| p.same_slot(&me)) {
            Ok(RecoveryAdvice::Restart)
        } else if last.is_empty() {
            // No record at all: nothing to wait for, restart fresh.
            Ok(RecoveryAdvice::Restart)
        } else {
            Ok(RecoveryAdvice::WaitForRestart)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::MemoryStore;
    use vsync_util::SiteId;

    fn p(site: u16) -> ProcessId {
        ProcessId::new(SiteId(site), 1)
    }

    fn manager() -> RecoveryManager {
        RecoveryManager::new(Rc::new(MemoryStore::new()), "twenty")
    }

    #[test]
    fn operational_group_means_rejoin() {
        let rm = manager();
        assert_eq!(rm.advise(p(0), true).unwrap(), RecoveryAdvice::Rejoin);
    }

    #[test]
    fn last_to_fail_restarts_the_group() {
        let rm = manager();
        let view = View::founding(GroupId(1), p(0)).successor(&[], &[p(1)]);
        rm.record_view(&view).unwrap();
        assert_eq!(rm.advise(p(0), false).unwrap(), RecoveryAdvice::Restart);
        assert_eq!(rm.advise(p(1), false).unwrap(), RecoveryAdvice::Restart);
    }

    #[test]
    fn earlier_casualties_wait_for_the_survivors() {
        let rm = manager();
        // Our site failed first; the view we logged last still contained us, but then the
        // survivors installed a view without us and logged *that* on their sites.  The check
        // below simulates the survivor's log advising *us*: the last view recorded there
        // excludes our process, so we must wait.
        let survivors_last_view = View::founding(GroupId(1), p(1)).successor(&[], &[p(2)]);
        rm.record_view(&survivors_last_view).unwrap();
        assert_eq!(
            rm.advise(p(0), false).unwrap(),
            RecoveryAdvice::WaitForRestart
        );
        assert_eq!(rm.advise(p(1), false).unwrap(), RecoveryAdvice::Restart);
    }

    #[test]
    fn recovery_recognises_new_incarnations_of_the_same_slot() {
        let rm = manager();
        let view = View::founding(GroupId(1), p(0));
        rm.record_view(&view).unwrap();
        let recovered_incarnation = p(0).next_incarnation();
        assert_eq!(
            rm.advise(recovered_incarnation, false).unwrap(),
            RecoveryAdvice::Restart
        );
    }

    #[test]
    fn no_history_means_fresh_restart() {
        let rm = manager();
        assert_eq!(rm.advise(p(3), false).unwrap(), RecoveryAdvice::Restart);
        assert!(rm.last_known_members().unwrap().is_empty());
    }
}
