//! Quorum and full-replication call helpers (paper Section 3.3).
//!
//! "Some replicated processing methods, such as the full replication method used in CIRCUS or
//! the quorum methods, have straightforward implementations in ISIS.  In the former case, the
//! caller waits for ALL responses and all recipients respond.  If the caller knows the quorum
//! size, Q, it simply waits for Q replies. ...  the Q oldest group members (or any other set
//! of Q members that can be identified consistently) reply, giving the value of Q as part of
//! their reply.  Other members send null replies."

use vsync_core::{
    Address, EntryId, GroupId, Message, ProcessId, ProtocolKind, Rank, ReplyWanted, RpcOutcome,
    ToolCtx, View,
};

/// Issues a quorum call: waits for `q` replies.
pub fn quorum_call(
    ctx: &mut ToolCtx<'_>,
    group: GroupId,
    entry: EntryId,
    payload: Message,
    q: usize,
    callback: impl FnOnce(&mut ToolCtx<'_>, RpcOutcome) + 'static,
) {
    ctx.call(
        vec![Address::Group(group)],
        entry,
        payload,
        ProtocolKind::Abcast,
        ReplyWanted::Count(q),
        callback,
    );
}

/// Issues a full-replication call: every member executes the request and the caller waits for
/// all the replies.
pub fn full_replication_call(
    ctx: &mut ToolCtx<'_>,
    group: GroupId,
    entry: EntryId,
    payload: Message,
    callback: impl FnOnce(&mut ToolCtx<'_>, RpcOutcome) + 'static,
) {
    ctx.call(
        vec![Address::Group(group)],
        entry,
        payload,
        ProtocolKind::Abcast,
        ReplyWanted::All,
        callback,
    );
}

/// Deterministic helper for the responder side of a quorum scheme: the `q` oldest members
/// reply, everyone else sends a null reply.  Because every member sees the same ranked view,
/// no agreement protocol is needed to decide who is in the quorum.
pub fn in_quorum(view: &View, me: ProcessId, q: usize) -> bool {
    view.rank_of(me).map(|r| r < q).unwrap_or(false)
}

/// Deterministic helper for partitioning work by rank: returns the member responsible for a
/// given column / shard index (`index mod NMEMBERS`), the rule the twenty-questions service
/// uses for vertical queries (paper Section 5, Step 2).
pub fn responsible_member(view: &View, index: usize) -> Option<ProcessId> {
    if view.is_empty() {
        None
    } else {
        view.members.get(index % view.len()).copied()
    }
}

/// Deterministic helper: the ranks of rows a member should answer for in horizontal mode
/// (`row mod NMEMBERS == my rank`).
pub fn responsible_for_row(view: &View, me: ProcessId, row: usize) -> bool {
    match (view.rank_of(me), view.len()) {
        (Some(rank), n) if n > 0 => row % n == rank,
        _ => false,
    }
}

/// Convenience: my rank in the view, if a member.
pub fn my_rank(view: &View, me: ProcessId) -> Option<Rank> {
    view.rank_of(me)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn view_of_three() -> View {
        let a = ProcessId::new(SiteId(0), 1);
        let b = ProcessId::new(SiteId(1), 1);
        let c = ProcessId::new(SiteId(2), 1);
        View::founding(GroupId(1), a)
            .successor(&[], &[b])
            .successor(&[], &[c])
    }

    #[test]
    fn quorum_membership_is_by_rank() {
        let v = view_of_three();
        let a = v.members[0];
        let c = v.members[2];
        assert!(in_quorum(&v, a, 2));
        assert!(!in_quorum(&v, c, 2));
        assert!(in_quorum(&v, c, 3));
        assert!(!in_quorum(&v, ProcessId::new(SiteId(9), 9), 3));
    }

    #[test]
    fn work_partitioning_is_deterministic() {
        let v = view_of_three();
        assert_eq!(responsible_member(&v, 0), Some(v.members[0]));
        assert_eq!(responsible_member(&v, 4), Some(v.members[1]));
        assert_eq!(responsible_member(&v, 5), Some(v.members[2]));
        assert!(responsible_for_row(&v, v.members[1], 4));
        assert!(!responsible_for_row(&v, v.members[1], 5));
        assert_eq!(my_rank(&v, v.members[2]), Some(2));
        let empty = View {
            id: v.id,
            members: vec![],
            joined: vec![],
            departed: vec![],
        };
        assert_eq!(responsible_member(&empty, 1), None);
    }
}
