//! The coordinator–cohort tool (paper Sections 3.3 and 6).
//!
//! "The preferred replicated processing method in ISIS is the coordinator-cohort scheme,
//! whereby the action associated with a request is performed by one group member while others
//! monitor its progress, taking over one by one as failures occur.  ...  Because all the
//! participants use the same plist and see the same group membership, all will agree on the
//! same value for the coordinator, without any additional communication among the group
//! members."
//!
//! The tool is invoked from the application's own request handler at *every* participant.
//! The participant that the deterministic rule selects performs the action and replies to the
//! caller, multicasting a copy of the reply to the cohorts; a cohort that later observes the
//! coordinator fail (through the group view) re-runs the selection and takes over.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use vsync_core::{
    Address, EntryId, GroupId, Message, ProcessBuilder, ProcessId, ProtocolKind, ToolCtx, View,
};

/// Computes the reply for a request (the `action` routine of the paper).
pub type ActionFn = Box<dyn FnMut(&mut ToolCtx<'_>, &Message) -> Message>;

/// Invoked at a cohort when the coordinator's reply copy arrives (the `got_reply` routine).
pub type GotReplyFn = Box<dyn FnMut(&mut ToolCtx<'_>, &Message)>;

struct PendingComputation {
    request: Message,
    plist: Vec<ProcessId>,
    action: ActionFn,
    got_reply: GotReplyFn,
}

struct Inner {
    group: GroupId,
    pending: BTreeMap<u64, PendingComputation>,
    completed: u64,
    taken_over: u64,
}

/// The coordinator–cohort tool attached to one group member.
#[derive(Clone)]
pub struct CoordCohort {
    inner: Rc<RefCell<Inner>>,
}

/// Deterministically selects the coordinator for a request, following Section 6: prefer a
/// participant at the caller's site (to minimise latency); otherwise use the caller's site id
/// as a "random" starting index into the participant list and scan circularly.
pub fn pick_coordinator(
    view: &View,
    plist: &[ProcessId],
    caller: Option<ProcessId>,
) -> Option<ProcessId> {
    let alive: Vec<ProcessId> = plist
        .iter()
        .copied()
        .filter(|p| view.contains(*p))
        .collect();
    if alive.is_empty() {
        return None;
    }
    if let Some(c) = caller {
        if let Some(local) = alive.iter().find(|p| p.site == c.site) {
            return Some(*local);
        }
        let start = c.site.index() % alive.len();
        return Some(alive[start]);
    }
    alive.first().copied()
}

impl CoordCohort {
    /// Creates the tool for a group.
    pub fn new(group: GroupId) -> Self {
        CoordCohort {
            inner: Rc::new(RefCell::new(Inner {
                group,
                pending: BTreeMap::new(),
                completed: 0,
                taken_over: 0,
            })),
        }
    }

    /// Binds the generic reply entry and the group monitor used for fail-over.
    pub fn attach(&self, builder: &mut ProcessBuilder) {
        let group = self.inner.borrow().group;
        // GENERIC_CC_REPLY: the coordinator finished; stop monitoring and hand the result to
        // the application's got_reply routine.
        let inner = self.inner.clone();
        builder.on_entry(EntryId::GENERIC_CC_REPLY, move |ctx, msg| {
            let Some(session) = msg.get_u64("cc-session") else {
                return;
            };
            let pending = inner.borrow_mut().pending.remove(&session);
            if let Some(mut p) = pending {
                inner.borrow_mut().completed += 1;
                (p.got_reply)(ctx, msg);
            }
        });
        // View monitor: if the coordinator of a pending computation failed, the surviving
        // participants re-run the deterministic selection; whoever is now selected takes over.
        let inner = self.inner.clone();
        builder.on_view_change(group, move |ctx, ev| {
            if ev.view.departed.is_empty() {
                return;
            }
            let me = ctx.me();
            let sessions: Vec<u64> = inner.borrow().pending.keys().copied().collect();
            for session in sessions {
                let takeover = {
                    let state = inner.borrow();
                    let Some(p) = state.pending.get(&session) else {
                        continue;
                    };
                    let caller = p.request.sender();
                    pick_coordinator(&ev.view, &p.plist, caller) == Some(me)
                };
                if takeover {
                    let removed = inner.borrow_mut().pending.remove(&session);
                    if let Some(mut p) = removed {
                        let result = (p.action)(ctx, &p.request);
                        reply_and_copy(ctx, &p.request, &p.plist, me, result, session);
                        let mut state = inner.borrow_mut();
                        state.taken_over += 1;
                        state.completed += 1;
                    }
                }
            }
        });
    }

    /// Invoked from the application's request handler at every participant (the paper's
    /// `coord-cohort(msg, gid, plist, action, got_reply)` routine).
    pub fn handle(
        &self,
        ctx: &mut ToolCtx<'_>,
        request: &Message,
        plist: Vec<ProcessId>,
        mut action: impl FnMut(&mut ToolCtx<'_>, &Message) -> Message + 'static,
        got_reply: impl FnMut(&mut ToolCtx<'_>, &Message) + 'static,
    ) {
        let group = self.inner.borrow().group;
        let me = ctx.me();
        let Some(view) = ctx.view_of(group).cloned() else {
            return;
        };
        let Some(session) = request.session() else {
            return;
        };
        if !plist.contains(&me) {
            // Non-participants issue null replies so the caller never waits on them.
            ctx.null_reply(request);
            return;
        }
        let coordinator = pick_coordinator(&view, &plist, request.sender());
        if coordinator == Some(me) {
            let result = action(ctx, request);
            reply_and_copy(ctx, request, &plist, me, result, session);
            self.inner.borrow_mut().completed += 1;
        } else {
            // Cohort: remember everything needed to take over, then wait.
            self.inner.borrow_mut().pending.insert(
                session,
                PendingComputation {
                    request: request.clone(),
                    plist,
                    action: Box::new(action),
                    got_reply: Box::new(got_reply),
                },
            );
        }
    }

    /// Number of computations this participant completed as coordinator.
    pub fn completed(&self) -> u64 {
        self.inner.borrow().completed
    }

    /// Number of computations this participant completed by taking over after a failure.
    pub fn taken_over(&self) -> u64 {
        self.inner.borrow().taken_over
    }

    /// Number of computations this participant is currently monitoring as a cohort.
    pub fn monitoring(&self) -> usize {
        self.inner.borrow().pending.len()
    }
}

fn reply_and_copy(
    ctx: &mut ToolCtx<'_>,
    request: &Message,
    plist: &[ProcessId],
    me: ProcessId,
    mut result: Message,
    session: u64,
) {
    ctx.reply(request, result.clone());
    // A copy of the reply goes to every cohort so they stop monitoring (paper Section 6: the
    // reply is multicast "not just to the caller, but also to the generic entry point
    // GENERIC_CC_REPLY in each of the cohorts").
    result.set("cc-session", session);
    for cohort in plist {
        if *cohort != me {
            ctx.send(
                Address::Process(*cohort),
                EntryId::GENERIC_CC_REPLY,
                result.clone(),
                ProtocolKind::Cbcast,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn member(site: u16) -> ProcessId {
        ProcessId::new(SiteId(site), 1)
    }

    fn three_member_view() -> View {
        View::founding(GroupId(1), member(0))
            .successor(&[], &[member(1)])
            .successor(&[], &[member(2)])
    }

    #[test]
    fn coordinator_prefers_the_callers_site() {
        let v = three_member_view();
        let plist = v.members.clone();
        let caller = ProcessId::new(SiteId(1), 7);
        assert_eq!(pick_coordinator(&v, &plist, Some(caller)), Some(member(1)));
    }

    #[test]
    fn coordinator_falls_back_to_a_circular_scan() {
        let v = three_member_view();
        let plist = v.members.clone();
        // Caller at a site hosting no participant: site id indexes the list.
        let caller = ProcessId::new(SiteId(4), 7);
        assert_eq!(pick_coordinator(&v, &plist, Some(caller)), Some(member(1)));
        let caller = ProcessId::new(SiteId(3), 7);
        assert_eq!(pick_coordinator(&v, &plist, Some(caller)), Some(member(0)));
    }

    #[test]
    fn failed_participants_are_skipped() {
        let v = three_member_view().successor(&[member(0)], &[]);
        let plist = vec![member(0), member(1), member(2)];
        let caller = ProcessId::new(SiteId(0), 7);
        // The participant at the caller's site is gone; selection must pick a survivor.
        let picked = pick_coordinator(&v, &plist, Some(caller)).unwrap();
        assert_ne!(picked, member(0));
        assert!(v.contains(picked));
    }

    #[test]
    fn empty_or_dead_plist_yields_none() {
        let v = three_member_view();
        assert_eq!(pick_coordinator(&v, &[], Some(member(0))), None);
        let all_dead = vec![ProcessId::new(SiteId(9), 1)];
        assert_eq!(pick_coordinator(&v, &all_dead, Some(member(0))), None);
    }

    #[test]
    fn every_participant_agrees_on_the_coordinator() {
        // The whole point of the scheme: selection is a pure function of (view, plist, caller),
        // so participants never need to communicate to agree.
        let v = three_member_view();
        let plist = v.members.clone();
        for caller_site in 0..6u16 {
            let caller = ProcessId::new(SiteId(caller_site), 42);
            let picks: Vec<_> = (0..3)
                .map(|_| pick_coordinator(&v, &plist, Some(caller)))
                .collect();
            assert!(picks.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
