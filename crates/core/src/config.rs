//! Per-site stack configuration.

use vsync_util::{Duration, LatencyProfile, NetParams};

/// Timers used by the per-site protocols process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackConfig {
    /// Period of the stack's maintenance tick (heartbeats, failure detection, stability).
    pub tick_interval: Duration,
    /// Interval between heartbeats sent to every other site.
    pub heartbeat_interval: Duration,
    /// Base failure-detection timeout (the detector adapts it upward under load).
    pub failure_timeout: Duration,
    /// Default deadline for a group RPC issued by a process that is not a group member
    /// (members rely on view changes instead of timeouts).
    pub rpc_timeout: Duration,
    /// How long a restarting site collects log summaries during a total-failure reform
    /// before holding a degraded election over whatever arrived (paper Section 3.8).
    pub reform_timeout: Duration,
}

impl StackConfig {
    /// Derives stack timers from a latency profile: slower networks need slower timers.
    pub fn for_profile(profile: LatencyProfile) -> Self {
        let params = NetParams::for_profile(profile);
        StackConfig::from_params(&params)
    }

    /// Derives stack timers from explicit network parameters.  The maintenance tick runs at
    /// the heartbeat period (heartbeat sending is separately rate-limited by
    /// `heartbeat_interval`, and every timeout the tick enforces — failure detection, RPC
    /// deadlines, flush watchdogs — is several multiples of it), so an idle site processes
    /// one timer event per period instead of two.
    pub fn from_params(params: &NetParams) -> Self {
        let hb = params.heartbeat_interval;
        StackConfig {
            tick_interval: Duration::from_micros(hb.as_micros().max(1_000)),
            heartbeat_interval: hb,
            failure_timeout: params.failure_timeout,
            rpc_timeout: params.failure_timeout.saturating_mul(4),
            reform_timeout: params.failure_timeout.saturating_mul(4),
        }
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig::for_profile(LatencyProfile::Modern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_scale_timers() {
        let paper = StackConfig::for_profile(LatencyProfile::Paper1987);
        let modern = StackConfig::for_profile(LatencyProfile::Modern);
        assert!(paper.heartbeat_interval > modern.heartbeat_interval);
        assert!(paper.failure_timeout > modern.failure_timeout);
        assert!(paper.tick_interval >= Duration::from_millis(1));
        assert!(paper.rpc_timeout > paper.failure_timeout);
    }
}
