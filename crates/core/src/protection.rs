//! The protection tool (paper Section 3.10).
//!
//! "A protection tool is provided that, if desired, will validate all incoming messages using
//! the sender address.  Messages that arrive from an unknown or untrusted client will be
//! presented to a user-specified routine ...  This works because ISIS ensures that a sender's
//! address cannot be forged.  Group membership changes are similarly validated before a
//! process is allowed to join or to receive a state transfer."
//!
//! Sender addresses cannot be forged here for the same reason as in ISIS: the protocol stack
//! strips every `@`-prefixed field from user-supplied payloads and writes `@sender` itself.

use std::collections::BTreeSet;

use vsync_msg::Message;
use vsync_util::ProcessId;

/// Outcome of running a message filter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FilterDecision {
    /// Deliver the message.
    Accept,
    /// Drop the message; the string explains why (surfaced in traces).
    Reject(String),
}

/// A per-group protection policy: who may join and who may send.
#[derive(Clone, Debug, Default)]
pub struct ProtectionPolicy {
    /// If set, join requests must present exactly this credential string.
    pub join_credential: Option<String>,
    /// If non-empty, only these processes may send messages to group members through the
    /// protected entries.
    pub trusted_senders: BTreeSet<ProcessId>,
}

impl ProtectionPolicy {
    /// A policy that accepts everything (the default).
    pub fn open() -> Self {
        ProtectionPolicy::default()
    }

    /// A policy requiring a join credential.
    pub fn with_join_credential(mut self, credential: impl Into<String>) -> Self {
        self.join_credential = Some(credential.into());
        self
    }

    /// A policy restricting senders to a fixed set.
    pub fn with_trusted_senders(mut self, senders: impl IntoIterator<Item = ProcessId>) -> Self {
        self.trusted_senders = senders.into_iter().collect();
        self
    }

    /// Validates a join request.
    pub fn validate_join(&self, credentials: Option<&str>) -> Result<(), String> {
        match &self.join_credential {
            None => Ok(()),
            Some(required) => {
                if credentials == Some(required.as_str()) {
                    Ok(())
                } else {
                    Err("join credential missing or incorrect".to_owned())
                }
            }
        }
    }

    /// Validates an incoming message using its (unforgeable) sender address.
    pub fn validate_sender(&self, msg: &Message) -> FilterDecision {
        if self.trusted_senders.is_empty() {
            return FilterDecision::Accept;
        }
        match msg.sender() {
            Some(sender) if self.trusted_senders.contains(&sender) => FilterDecision::Accept,
            Some(sender) => FilterDecision::Reject(format!("untrusted sender {sender}")),
            None => FilterDecision::Reject("message has no sender address".to_owned()),
        }
    }

    /// Builds a message filter closure enforcing this policy.
    pub fn as_filter(&self) -> impl FnMut(&Message) -> FilterDecision + 'static {
        let policy = self.clone();
        move |msg| policy.validate_sender(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn p(local: u32) -> ProcessId {
        ProcessId::new(SiteId(0), local)
    }

    #[test]
    fn open_policy_accepts_everything() {
        let policy = ProtectionPolicy::open();
        assert_eq!(policy.validate_join(None), Ok(()));
        assert_eq!(
            policy.validate_sender(&Message::new()),
            FilterDecision::Accept
        );
    }

    #[test]
    fn join_credentials_are_enforced() {
        let policy = ProtectionPolicy::open().with_join_credential("sesame");
        assert!(policy.validate_join(Some("sesame")).is_ok());
        assert!(policy.validate_join(Some("wrong")).is_err());
        assert!(policy.validate_join(None).is_err());
    }

    #[test]
    fn sender_validation_uses_the_unforgeable_address() {
        let policy = ProtectionPolicy::open().with_trusted_senders([p(1), p(2)]);
        let mut trusted = Message::with_body(1u64);
        trusted.set_sender(p(1));
        assert_eq!(policy.validate_sender(&trusted), FilterDecision::Accept);

        let mut untrusted = Message::with_body(1u64);
        untrusted.set_sender(p(9));
        assert!(matches!(
            policy.validate_sender(&untrusted),
            FilterDecision::Reject(_)
        ));

        assert!(matches!(
            policy.validate_sender(&Message::with_body(1u64)),
            FilterDecision::Reject(_)
        ));
    }

    #[test]
    fn filter_closure_applies_the_policy() {
        let policy = ProtectionPolicy::open().with_trusted_senders([p(1)]);
        let mut filter = policy.as_filter();
        let mut ok = Message::new();
        ok.set_sender(p(1));
        assert_eq!(filter(&ok), FilterDecision::Accept);
        let mut bad = Message::new();
        bad.set_sender(p(2));
        assert!(matches!(filter(&bad), FilterDecision::Reject(_)));
    }
}
