//! Group RPC reply collection.
//!
//! "The caller indicates how many responses are desired; this will normally be 0, 1, or ALL,
//! although any limit could be specified. ...  While collecting responses, the system waits
//! until it has the number desired, or until all the remaining destinations have failed.
//! ...  Superfluous and duplicate replies are discarded silently.  It is also possible for a
//! destination to send a null reply, indicating that it does not intend to send a normal
//! reply" (paper Section 3.2).

use std::collections::BTreeSet;

use vsync_msg::Message;
use vsync_util::{ProcessId, SimTime, SiteId, VsError};

/// How many replies the caller wants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyWanted {
    /// Asynchronous multicast: the caller continues immediately and no replies are collected.
    None,
    /// Wait for a single reply.
    One,
    /// Wait for a specific number of replies.
    Count(usize),
    /// Wait for a reply from every destination that does not send a null reply.
    All,
}

impl ReplyWanted {
    /// The numeric target given the number of destinations awaited.
    pub fn target(&self, destinations: usize) -> usize {
        match self {
            ReplyWanted::None => 0,
            ReplyWanted::One => 1.min(destinations),
            ReplyWanted::Count(n) => (*n).min(destinations),
            ReplyWanted::All => destinations,
        }
    }
}

/// The result handed to the caller's continuation.
#[derive(Clone, Debug, PartialEq)]
pub struct RpcOutcome {
    /// The non-null replies collected, in arrival order.
    pub replies: Vec<Message>,
    /// The processes that sent each reply (parallel to `replies`).
    pub responders: Vec<ProcessId>,
    /// Set when the collection ended without reaching the target (all remaining destinations
    /// failed, or the deadline passed for an external caller).
    pub error: Option<VsError>,
}

impl RpcOutcome {
    /// True if the desired number of replies was collected.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// State of one in-progress reply collection.
pub struct ReplyCollector {
    /// The process that issued the call (its continuation runs when collection completes).
    pub caller: ProcessId,
    /// Session id carried by the request and echoed by replies.
    pub session: u64,
    /// Destinations that have not yet replied (null replies and failures remove entries).
    awaiting: BTreeSet<ProcessId>,
    /// Number of real replies wanted.
    target: usize,
    replies: Vec<Message>,
    responders: Vec<ProcessId>,
    responded: BTreeSet<ProcessId>,
    /// Optional deadline (used for callers that are not members of the destination group and
    /// therefore do not observe its view changes).
    pub deadline: Option<SimTime>,
    /// True when the destination membership was unknown at call time (external caller with no
    /// cached view): collection then completes on reaching the target or on the deadline,
    /// never on "awaiting set empty".
    open_ended: bool,
}

/// What to do after feeding an event to a collector.
#[derive(Debug, PartialEq)]
pub enum CollectorStatus {
    /// Keep waiting.
    Pending,
    /// Collection finished; invoke the continuation with this outcome.
    Done(RpcOutcome),
}

impl ReplyCollector {
    /// Creates a collector awaiting replies from `destinations`.
    pub fn new(
        caller: ProcessId,
        session: u64,
        destinations: Vec<ProcessId>,
        wanted: ReplyWanted,
        deadline: Option<SimTime>,
    ) -> Self {
        Self::new_with_mode(caller, session, destinations, wanted, deadline, false)
    }

    /// Creates a collector, optionally in open-ended mode (destination membership unknown).
    pub fn new_with_mode(
        caller: ProcessId,
        session: u64,
        destinations: Vec<ProcessId>,
        wanted: ReplyWanted,
        deadline: Option<SimTime>,
        open_ended: bool,
    ) -> Self {
        let awaiting: BTreeSet<ProcessId> = destinations.into_iter().collect();
        let target = if open_ended {
            match wanted {
                ReplyWanted::None => 0,
                ReplyWanted::One => 1,
                ReplyWanted::Count(n) => n,
                ReplyWanted::All => usize::MAX,
            }
        } else {
            wanted.target(awaiting.len())
        };
        ReplyCollector {
            caller,
            session,
            awaiting,
            target,
            replies: Vec::new(),
            responders: Vec::new(),
            responded: BTreeSet::new(),
            deadline,
            open_ended,
        }
    }

    /// Number of real replies still needed.
    pub fn outstanding(&self) -> usize {
        self.target.saturating_sub(self.replies.len())
    }

    /// Processes whose replies are still awaited.
    pub fn awaiting(&self) -> Vec<ProcessId> {
        self.awaiting.iter().copied().collect()
    }

    fn check(&mut self) -> CollectorStatus {
        if self.replies.len() >= self.target {
            return CollectorStatus::Done(RpcOutcome {
                replies: std::mem::take(&mut self.replies),
                responders: std::mem::take(&mut self.responders),
                error: None,
            });
        }
        if self.awaiting.is_empty() && !self.open_ended {
            // Everyone has either answered (possibly with a null reply) or failed.  If at
            // least one real reply arrived the collection simply completes short (the quorum
            // pattern of Section 3.3); if nothing arrived the caller gets an error code.
            let error = if self.replies.is_empty() && self.target > 0 {
                Some(VsError::AllDestinationsFailed {
                    wanted: self.target,
                    got: 0,
                })
            } else {
                None
            };
            return CollectorStatus::Done(RpcOutcome {
                error,
                replies: std::mem::take(&mut self.replies),
                responders: std::mem::take(&mut self.responders),
            });
        }
        CollectorStatus::Pending
    }

    /// Feeds a reply (normal or null) from `from`.
    pub fn on_reply(&mut self, from: ProcessId, msg: Message) -> CollectorStatus {
        if self.responded.contains(&from) {
            // Duplicate replies are discarded silently.
            return self.check();
        }
        self.responded.insert(from);
        self.awaiting.remove(&from);
        if !msg.is_null_reply() {
            self.replies.push(msg);
            self.responders.push(from);
        }
        self.check()
    }

    /// Notes that a destination failed before replying.
    pub fn on_failure(&mut self, failed: ProcessId) -> CollectorStatus {
        self.awaiting.remove(&failed);
        self.check()
    }

    /// Notes that every process at a site failed (site crash).
    pub fn on_site_failure(&mut self, site: SiteId) -> CollectorStatus {
        self.awaiting.retain(|p| p.site != site);
        self.check()
    }

    /// Checks the deadline.
    pub fn on_tick(&mut self, now: SimTime) -> CollectorStatus {
        if let Some(d) = self.deadline {
            if now >= d {
                // Reaching the deadline with some replies in hand (an open-ended ALL call,
                // for instance) is a normal completion; with none it is a timeout error.
                let error = if self.replies.is_empty() && self.target > 0 {
                    Some(VsError::Timeout(format!(
                        "group RPC session {} (0 of {} replies)",
                        self.session, self.target
                    )))
                } else {
                    None
                };
                return CollectorStatus::Done(RpcOutcome {
                    error,
                    replies: std::mem::take(&mut self.replies),
                    responders: std::mem::take(&mut self.responders),
                });
            }
        }
        self.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn p(site: u16, local: u32) -> ProcessId {
        ProcessId::new(SiteId(site), local)
    }

    fn reply(body: u64) -> Message {
        let mut m = Message::with_body(body);
        m.mark_reply(false);
        m
    }

    fn null_reply() -> Message {
        let mut m = Message::new();
        m.mark_reply(true);
        m
    }

    #[test]
    fn reply_wanted_targets() {
        assert_eq!(ReplyWanted::None.target(5), 0);
        assert_eq!(ReplyWanted::One.target(5), 1);
        assert_eq!(ReplyWanted::One.target(0), 0);
        assert_eq!(ReplyWanted::Count(3).target(5), 3);
        assert_eq!(ReplyWanted::Count(9).target(5), 5);
        assert_eq!(ReplyWanted::All.target(5), 5);
    }

    #[test]
    fn collects_until_target() {
        let dests = vec![p(0, 1), p(1, 1), p(2, 1)];
        let mut c = ReplyCollector::new(p(3, 1), 1, dests, ReplyWanted::Count(2), None);
        assert_eq!(c.on_reply(p(0, 1), reply(10)), CollectorStatus::Pending);
        match c.on_reply(p(1, 1), reply(20)) {
            CollectorStatus::Done(outcome) => {
                assert!(outcome.is_ok());
                assert_eq!(outcome.replies.len(), 2);
                assert_eq!(outcome.responders, vec![p(0, 1), p(1, 1)]);
            }
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_replies_are_discarded() {
        let mut c = ReplyCollector::new(p(3, 1), 1, vec![p(0, 1), p(1, 1)], ReplyWanted::All, None);
        assert_eq!(c.on_reply(p(0, 1), reply(1)), CollectorStatus::Pending);
        assert_eq!(c.on_reply(p(0, 1), reply(1)), CollectorStatus::Pending);
        match c.on_reply(p(1, 1), reply(2)) {
            CollectorStatus::Done(o) => assert_eq!(o.replies.len(), 2),
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn null_replies_release_the_caller_from_waiting_for_standbys() {
        // Caller wants ALL, but one destination is a standby that sends a null reply.
        let mut c = ReplyCollector::new(p(3, 1), 1, vec![p(0, 1), p(1, 1)], ReplyWanted::All, None);
        assert_eq!(c.on_reply(p(1, 1), null_reply()), CollectorStatus::Pending);
        // Hmm: wanting ALL of 2 destinations but one was null; the real reply completes it
        // because the null reply removed that destination from the awaited set and the target
        // can never exceed what remains achievable.
        match c.on_reply(p(0, 1), reply(5)) {
            CollectorStatus::Done(o) => {
                assert_eq!(o.replies.len(), 1);
                assert!(o.error.is_some() || o.replies.len() == 1);
            }
            CollectorStatus::Pending => panic!("collector must finish once every dest answered"),
        }
    }

    #[test]
    fn all_destinations_failing_is_an_error() {
        let mut c = ReplyCollector::new(p(3, 1), 7, vec![p(0, 1), p(1, 1)], ReplyWanted::One, None);
        assert_eq!(c.on_failure(p(0, 1)), CollectorStatus::Pending);
        match c.on_failure(p(1, 1)) {
            CollectorStatus::Done(o) => {
                assert!(matches!(
                    o.error,
                    Some(VsError::AllDestinationsFailed { .. })
                ));
            }
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn site_failure_removes_every_process_at_that_site() {
        let mut c = ReplyCollector::new(
            p(9, 1),
            7,
            vec![p(0, 1), p(0, 2), p(1, 1)],
            ReplyWanted::One,
            None,
        );
        assert_eq!(c.on_site_failure(SiteId(0)), CollectorStatus::Pending);
        assert_eq!(c.awaiting(), vec![p(1, 1)]);
    }

    #[test]
    fn deadline_produces_timeout() {
        let mut c = ReplyCollector::new(
            p(9, 1),
            7,
            vec![p(0, 1)],
            ReplyWanted::One,
            Some(SimTime(1_000)),
        );
        assert_eq!(c.on_tick(SimTime(999)), CollectorStatus::Pending);
        match c.on_tick(SimTime(1_000)) {
            CollectorStatus::Done(o) => assert!(matches!(o.error, Some(VsError::Timeout(_)))),
            other => panic!("expected done, got {other:?}"),
        }
    }

    #[test]
    fn zero_replies_wanted_completes_immediately() {
        let mut c = ReplyCollector::new(p(9, 1), 7, vec![p(0, 1)], ReplyWanted::None, None);
        match c.on_tick(SimTime(0)) {
            CollectorStatus::Done(o) => assert!(o.is_ok()),
            other => panic!("expected done, got {other:?}"),
        }
    }
}
