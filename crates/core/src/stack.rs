//! The per-site protocols process (paper Figure 1).
//!
//! "The system is organized around a protocols process which implements the multicast
//! primitives, handles process group addressing and does all inter-site communication.  This
//! process maintains process group membership views, using a cache for groups not resident at
//! the site.  Client programs are linked directly to whatever tools they employ."
//!
//! [`SiteStack`] is that process.  It owns one [`GroupEndpoint`] per group with members at
//! this site, hosts the client processes themselves (entry handlers and monitors), runs the
//! failure detector, collects group-RPC replies, and relays multicasts issued by clients that
//! are not members of the destination group to a site that is.

use std::collections::{BTreeMap, BTreeSet};

use vsync_msg::{fields, Frame, Message};
use vsync_net::{Outbox, Packet, PacketKind, ProtocolKind, SharedStats, SiteHandler};
use vsync_proto::messages::ProtoMsg;
use vsync_proto::{
    Delivery, EndpointOutput, GroupEndpoint, LogSummary, ProtoConfig, ReformStatus, ReformTracker,
    View, ViewEvent,
};
use vsync_util::{
    Address, Duration, EntryId, GroupId, ProcessId, Result, SimTime, SiteId, VsError,
};

use crate::config::StackConfig;
use crate::process::{reply_target, CtxAction, IsisProcess, ReplyCallback, ToolCtx};
use crate::protection::{FilterDecision, ProtectionPolicy};
use crate::rpc::{CollectorStatus, ReplyCollector, ReplyWanted, RpcOutcome};
use vsync_net::FailureDetector;

/// Timer token used for the stack's periodic maintenance tick.
const TICK: u64 = 1;

/// Control-field name used for stack-to-stack (non-protocol) traffic.
const CTRL: &str = "@ctrl";

/// Returns the process id conventionally used for the protocols process of a site.
pub fn protocols_process(site: SiteId) -> ProcessId {
    ProcessId::new(site, 0)
}

/// A join submitted at this site whose view has not installed yet.  Kept so the request can
/// be re-submitted: the JoinReq (or the coordinator it was queued at) may have died with a
/// crashed site, and membership changes are idempotent end to end (the coordinator dedups
/// queued joiners, `View::successor` ignores joins of existing members), so re-sending is
/// always safe.
struct PendingJoin {
    group: GroupId,
    joiner: ProcessId,
    credentials: Option<String>,
    last_sent: SimTime,
    /// Resubmissions since the last view install for the group.  Drives the exponential
    /// backoff: a join that keeps failing is probably waiting out a partition or a dead
    /// coordinator, and hammering it at a fixed cadence only adds load right when the
    /// group is least able to absorb it.
    attempts: u32,
}

impl PendingJoin {
    /// How long to wait after `last_sent` before resubmitting: `failure_timeout`
    /// doubled per failed attempt (capped at 8x) plus a deterministic jitter of up to a
    /// quarter of that, seeded from the joiner identity and the attempt number so
    /// concurrent joiners desynchronise identically on every run.
    fn retry_delay(&self, base: Duration) -> Duration {
        let backoff = base.saturating_mul(1u64 << self.attempts.min(3));
        let mut rng = vsync_util::DetRng::new(
            0x9e37_79b9_7f4a_7c15
                ^ (u64::from(self.joiner.site.0) << 24)
                ^ (u64::from(self.joiner.local) << 8)
                ^ u64::from(self.attempts),
        );
        let jitter = rng.next_below(backoff.as_micros() / 4 + 1);
        backoff + Duration::from_micros(jitter)
    }
}

/// One in-flight total-failure reform at this site (paper Section 3.8): the election state
/// plus the retransmission bookkeeping the stack drives around it.
struct ReformRun {
    tracker: ReformTracker,
    /// When our summary last went out; rebroadcast at the failure-timeout cadence until
    /// the election resolves, so staggered restarts and lost packets converge.
    last_broadcast: SimTime,
    /// Sites our summary has already been sent to.  Participants' last recorded views —
    /// and hence their expected sets — legitimately differ (the later a site died, the
    /// smaller its final view), so a peer outside *our* expected set may still need our
    /// summary to resolve *its* election: answer every first-time sender, even after our
    /// own election resolved, but answer each at most once so replies cannot ping-pong.
    answered: BTreeSet<SiteId>,
    /// Whether the resolution has been counted (and traced) yet.
    counted: bool,
}

/// The per-site protocols process plus the client processes it hosts.
pub struct SiteStack {
    site: SiteId,
    cfg: StackConfig,
    proto_cfg: ProtoConfig,
    stats: SharedStats,
    all_sites: Vec<SiteId>,
    processes: BTreeMap<ProcessId, IsisProcess>,
    endpoints: BTreeMap<GroupId, GroupEndpoint>,
    /// Views of groups this site knows about (member groups plus cached contact views).
    views: BTreeMap<GroupId, View>,
    /// Symbolic name -> group id (the namespace cache).
    directory: BTreeMap<String, GroupId>,
    /// Group id -> candidate contact sites, refreshed from every view we observe.
    contacts: BTreeMap<GroupId, Vec<SiteId>>,
    policies: BTreeMap<GroupId, ProtectionPolicy>,
    fd: FailureDetector,
    collectors: BTreeMap<u64, ReplyCollector>,
    callbacks: BTreeMap<u64, ReplyCallback>,
    /// Joins awaiting their view, re-submitted on a failure-timeout cadence.
    pending_joins: Vec<PendingJoin>,
    /// Total-failure reforms in progress at this site, by group.
    reforms: BTreeMap<GroupId, ReformRun>,
    next_session: u64,
    now: SimTime,
    /// When this stack last broadcast heartbeats.  Heartbeats go out at
    /// `heartbeat_interval` regardless of how fast the maintenance tick runs: with the
    /// default config (`StackConfig::from_params`) the tick period *equals* the heartbeat
    /// period, so this guard only bites for custom configs that tick faster.
    last_heartbeat: Option<SimTime>,
    /// Scratch for the per-tick group sweep, reused so an idle tick allocates nothing.
    group_scratch: Vec<GroupId>,
    /// Scratch for the per-delivery local-member sweep (same reuse rationale).
    member_scratch: Vec<ProcessId>,
    /// Scratch for endpoint outputs, reused across packets/ticks.  Taken (leaving an empty
    /// vector) for the duration of one pump, so re-entrant pumps fall back to a fresh
    /// allocation instead of aliasing.
    eout_scratch: Vec<EndpointOutput>,
}

impl SiteStack {
    /// Creates the stack for `site` in a cluster of `all_sites`.
    pub fn new(
        site: SiteId,
        all_sites: Vec<SiteId>,
        cfg: StackConfig,
        proto_cfg: ProtoConfig,
        stats: SharedStats,
    ) -> Self {
        let fd = FailureDetector::new(
            site,
            all_sites.iter().copied(),
            cfg.heartbeat_interval,
            cfg.failure_timeout,
            SimTime::ZERO,
        );
        SiteStack {
            site,
            cfg,
            proto_cfg,
            stats,
            all_sites,
            processes: BTreeMap::new(),
            endpoints: BTreeMap::new(),
            views: BTreeMap::new(),
            directory: BTreeMap::new(),
            contacts: BTreeMap::new(),
            policies: BTreeMap::new(),
            fd,
            collectors: BTreeMap::new(),
            callbacks: BTreeMap::new(),
            pending_joins: Vec::new(),
            reforms: BTreeMap::new(),
            next_session: 0,
            now: SimTime::ZERO,
            last_heartbeat: None,
            group_scratch: Vec::new(),
            member_scratch: Vec::new(),
            eout_scratch: Vec::new(),
        }
    }

    /// The site this stack runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Shared statistics counters.
    pub fn stats(&self) -> SharedStats {
        self.stats.clone()
    }

    /// Adds a client process to this site.
    pub fn add_process(&mut self, process: IsisProcess) {
        assert_eq!(
            process.id.site, self.site,
            "process spawned on the wrong site"
        );
        self.processes.insert(process.id, process);
    }

    /// True if the process is currently hosted (and alive) here.
    pub fn has_process(&self, pid: ProcessId) -> bool {
        self.processes.contains_key(&pid)
    }

    /// The view this site currently has of a group (member view or cached).
    pub fn view_of(&self, group: GroupId) -> Option<&View> {
        self.views.get(&group)
    }

    /// Number of multicasts this site has received in the group's current view that are
    /// not yet known stable (would be redistributed by a flush).  Zero if this site runs
    /// no endpoint for the group.
    pub fn unstable_count(&self, group: GroupId) -> usize {
        self.endpoints
            .get(&group)
            .map(|ep| ep.unstable_len())
            .unwrap_or(0)
    }

    /// Resolves a symbolic group name from the local namespace cache.
    pub fn lookup(&self, name: &str) -> Option<GroupId> {
        self.directory.get(name).copied()
    }

    /// Registers a group in the local namespace cache (the namespace service's push).
    pub fn register_group(&mut self, name: &str, group: GroupId, contact_sites: Vec<SiteId>) {
        self.directory.insert(name.to_owned(), group);
        self.contacts.insert(group, contact_sites);
    }

    /// Installs a protection policy for a group (checked at this site when it coordinates).
    pub fn set_policy(&mut self, group: GroupId, policy: ProtectionPolicy) {
        self.policies.insert(group, policy);
    }

    /// Creates a group with `creator` (hosted here) as its founding member.
    pub fn create_group(
        &mut self,
        name: &str,
        group: GroupId,
        creator: ProcessId,
        out: &mut Outbox,
    ) {
        self.create_group_at(name, group, creator, 1, out);
    }

    /// Founds (or refounds) a group with the view-sequence line starting at `first_seq`.
    /// Ordinary creation uses seq 1; a total-failure reform winner refounds at
    /// `authoritative last view + 1` so the reformed incarnation's views — and any later
    /// reform election — dominate every pre-crash recovery log.
    pub fn create_group_at(
        &mut self,
        name: &str,
        group: GroupId,
        creator: ProcessId,
        first_seq: u64,
        out: &mut Outbox,
    ) {
        let mut ep = GroupEndpoint::new(group, self.site, self.proto_cfg, self.stats.clone());
        let mut eouts = self.take_eouts();
        ep.create_at(creator, first_seq, &mut eouts);
        self.endpoints.insert(group, ep);
        self.register_group(name, group, vec![self.site]);
        self.pump_endpoint_outputs(group, eouts, out);
    }

    // -- Total-failure reform (paper Section 3.8) ---------------------------------------------

    /// Starts a total-failure reform of `group` at this restarting site: offers `summary`
    /// (what our recovery log covers) to `expected` — the sites of the last view the log
    /// recorded, the only logs that could dominate ours — and collects theirs until the
    /// election resolves.  Poll [`reform_status`](Self::reform_status); the stack
    /// rebroadcasts the summary on a failure-timeout cadence and holds a degraded election
    /// if `reform_timeout` passes with summaries still missing.
    pub fn begin_reform(
        &mut self,
        group: GroupId,
        summary: LogSummary,
        expected: Vec<SiteId>,
        out: &mut Outbox,
    ) {
        let deadline = self.now + self.cfg.reform_timeout;
        let mut tracker = ReformTracker::new(summary, expected, deadline);
        // The reform election honors the same primary-partition rule as live view changes:
        // a degraded (deadline) election may only elect a leader among a majority of the
        // expected participants.  Disabled together with the endpoint fence.
        if !self.proto_cfg.primary_partition {
            tracker = tracker.without_majority_fence();
        }
        out.trace_with(|| {
            format!(
                "{}: reforming {group} with {} expected participants",
                self.site,
                tracker.expected().len()
            )
        });
        let mut run = ReformRun {
            tracker,
            last_broadcast: self.now,
            answered: BTreeSet::new(),
            counted: false,
        };
        self.broadcast_reform_summary(group, &mut run, out);
        self.reforms.insert(group, run);
    }

    /// Advances and reports the reform election for `group`, if one runs at this site.
    /// `Collecting` until resolution; resolutions are sticky.  The entry is dropped (and
    /// this returns `None` again) once a view for the group installs here — lead, follow
    /// and operational paths all end in exactly that.
    pub fn reform_status(&mut self, group: GroupId, out: &mut Outbox) -> Option<ReformStatus> {
        let mut reforms = std::mem::take(&mut self.reforms);
        let status = reforms
            .get_mut(&group)
            .map(|run| self.advance_reform(group, run, out));
        debug_assert!(self.reforms.is_empty(), "re-entrant reform poll");
        self.reforms = reforms;
        status
    }

    /// Resolves the election if it can fire, counting and tracing the resolution once.
    fn advance_reform(
        &mut self,
        group: GroupId,
        run: &mut ReformRun,
        out: &mut Outbox,
    ) -> ReformStatus {
        let status = run.tracker.try_resolve(self.now);
        if run.tracker.status().is_some() && !run.counted {
            run.counted = true;
            self.stats.with(|s| s.count_reform_election());
            out.trace_with(|| format!("{}: reform of {group} resolved: {status:?}", self.site));
        }
        status
    }

    /// Sends our summary to every expected participant (except ourselves).
    fn broadcast_reform_summary(&self, group: GroupId, run: &mut ReformRun, out: &mut Outbox) {
        let s = run.tracker.own_summary();
        let wire = ProtoMsg::ReformSummary {
            from_site: s.site,
            view_seq: s.view_seq,
            covered: s.covered.clone(),
            rank: s.rank,
        }
        .encode_frame(group);
        let mut sent = false;
        for site in run.tracker.expected().to_vec() {
            if site != self.site {
                self.send_proto(site, PacketKind::Control, wire.clone(), out);
                run.answered.insert(site);
                sent = true;
            }
        }
        if sent {
            self.stats.with(|s| s.count_reform_summary());
        }
    }

    /// A restarting peer offered its log summary for `group`.
    fn handle_reform_summary(&mut self, group: GroupId, summary: LogSummary, out: &mut Outbox) {
        // A live view here means the group never fully failed: the sender must abandon
        // its reform and rejoin normally, with this site as contact.
        if self
            .endpoints
            .get(&group)
            .and_then(|ep| ep.view())
            .is_some()
        {
            let wire = ProtoMsg::ReformAlive { contact: self.site }.encode_frame(group);
            self.send_proto(summary.site, PacketKind::Control, wire, out);
            return;
        }
        let mut reforms = std::mem::take(&mut self.reforms);
        if let Some(run) = reforms.get_mut(&group) {
            let fresh = run.tracker.record(summary.clone());
            // Answer with our own summary if the sender brought new information or has
            // never heard ours — the latter matters when the sender is outside our
            // expected set (its last recorded view was larger than ours), or when our
            // election already resolved: without the reply it would starve until its
            // degraded deadline and could elect a second leader.  Terminates: each sender
            // is answered at most once per election, and the peer's `record` of our
            // (already known) summary returns false, so it does not answer again.
            if fresh || !run.answered.contains(&summary.site) {
                run.answered.insert(summary.site);
                self.broadcast_reform_summary_to(group, &run.tracker, summary.site, out);
            }
        }
        // Not reforming (e.g. still replaying our own disk): safe to drop — the sender
        // rebroadcasts on a timer until its election resolves.
        self.reforms = reforms;
    }

    /// Unicast variant of [`broadcast_reform_summary`](Self::broadcast_reform_summary).
    fn broadcast_reform_summary_to(
        &self,
        group: GroupId,
        tracker: &ReformTracker,
        dst: SiteId,
        out: &mut Outbox,
    ) {
        let s = tracker.own_summary();
        let wire = ProtoMsg::ReformSummary {
            from_site: s.site,
            view_seq: s.view_seq,
            covered: s.covered.clone(),
            rank: s.rank,
        }
        .encode_frame(group);
        self.send_proto(dst, PacketKind::Control, wire, out);
        self.stats.with(|st| st.count_reform_summary());
    }

    /// Asks for `joiner` (hosted here) to join `group`.
    pub fn join_group(
        &mut self,
        group: GroupId,
        joiner: ProcessId,
        credentials: Option<String>,
        out: &mut Outbox,
    ) -> Result<()> {
        // Track the join until a view containing the joiner installs, so the maintenance
        // tick can re-submit it if the contact or coordinator it reaches first crashes.
        match self
            .pending_joins
            .iter_mut()
            .find(|p| p.group == group && p.joiner == joiner)
        {
            Some(p) => {
                p.last_sent = self.now;
                p.attempts = 0;
            }
            None => self.pending_joins.push(PendingJoin {
                group,
                joiner,
                credentials: credentials.clone(),
                last_sent: self.now,
                attempts: 0,
            }),
        }
        self.submit_join_request(group, joiner, credentials, 0, out)
    }

    /// One attempt at routing a join: submit locally if a member lives here, otherwise send
    /// a JoinReq to a contact site the failure detector believes alive.  `attempt` is the
    /// retry count for this join: once the exponential backoff is exhausted (the cap in
    /// [`PendingJoin::retry_delay`]), the preferred contact is presumed unreachable in a
    /// useful sense — often stranded in a wedged minority component that heartbeats fine
    /// but can never install the join's view — and the request fails over, rotating
    /// deterministically through the other known contact sites.
    fn submit_join_request(
        &mut self,
        group: GroupId,
        joiner: ProcessId,
        credentials: Option<String>,
        attempt: u32,
        out: &mut Outbox,
    ) -> Result<()> {
        // Make sure an endpoint exists so the eventual FlushCommit can be applied here.
        self.endpoints.entry(group).or_insert_with(|| {
            GroupEndpoint::new(group, self.site, self.proto_cfg, self.stats.clone())
        });
        let ep = self.endpoints.get(&group).expect("endpoint just ensured");
        if ep.view().is_some() {
            // A member already lives here: submit the join locally.
            let mut eouts = self.take_eouts();
            let ep = self.endpoints.get_mut(&group).expect("endpoint exists");
            ep.submit_join(self.now, joiner, credentials, &mut eouts)?;
            self.pump_endpoint_outputs(group, eouts, out);
            return Ok(());
        }
        // Otherwise ask a contact site.
        let preferred = self
            .alive_contact(group)
            .ok_or(VsError::NoSuchGroup(group))?;
        let contact = match self.failover_contact(group, preferred, attempt) {
            Some(other) => {
                self.stats.with(|s| s.count_join_failover());
                out.trace_with(|| {
                    format!(
                        "{}: JoinContactUnreachable: join of {joiner} to {group} via \
                         {preferred} stalled after {attempt} attempts; failing over to {other}",
                        self.site
                    )
                });
                other
            }
            None => preferred,
        };
        let wire = ProtoMsg::JoinReq {
            joiner,
            credentials,
        }
        .encode_frame(group);
        self.send_proto(contact, PacketKind::Flush, wire, out);
        Ok(())
    }

    /// Picks the failover contact for a join whose backoff is exhausted: the retries
    /// rotate through the known contact sites *other than* the stalled preferred one, so
    /// a contact stranded in a minority component cannot absorb join attempts forever.
    /// `None` below the backoff cap, or when no alternative site is known.
    fn failover_contact(&self, group: GroupId, preferred: SiteId, attempt: u32) -> Option<SiteId> {
        if attempt <= 3 {
            return None;
        }
        let candidates = self.contacts.get(&group)?;
        let others: Vec<SiteId> = candidates
            .iter()
            .copied()
            .filter(|s| *s != preferred)
            .collect();
        if others.is_empty() {
            return None;
        }
        Some(others[(attempt as usize - 4) % others.len()])
    }

    /// Asks for `member` (hosted here) to leave `group`.
    pub fn leave_group(
        &mut self,
        group: GroupId,
        member: ProcessId,
        out: &mut Outbox,
    ) -> Result<()> {
        // An explicit leave cancels any still-pending join retry for the same member.
        self.pending_joins
            .retain(|p| !(p.group == group && p.joiner == member));
        let mut eouts = self.take_eouts();
        match self.endpoints.get_mut(&group) {
            Some(ep) if ep.view().is_some() => {
                ep.submit_leave(self.now, member, &mut eouts)?;
                self.pump_endpoint_outputs(group, eouts, out);
                Ok(())
            }
            _ => {
                let contact = self
                    .alive_contact(group)
                    .ok_or(VsError::NoSuchGroup(group))?;
                let wire = ProtoMsg::LeaveReq { member }.encode_frame(group);
                self.send_proto(contact, PacketKind::Flush, wire, out);
                Ok(())
            }
        }
    }

    /// Crashes a local client process: it disappears immediately, and every group it belonged
    /// to is told (the paper's "detectable by some monitoring mechanism at the site").
    pub fn crash_local_process(&mut self, pid: ProcessId, out: &mut Outbox) {
        self.processes.remove(&pid);
        // A dead joiner's pending join must not be re-submitted on its behalf.
        self.pending_joins.retain(|p| p.joiner != pid);
        // Cancel the collectors belonging to the dead caller.
        let dead_sessions: Vec<u64> = self
            .collectors
            .iter()
            .filter(|(_, c)| c.caller == pid)
            .map(|(s, _)| *s)
            .collect();
        for s in dead_sessions {
            self.collectors.remove(&s);
            self.callbacks.remove(&s);
        }
        let groups: Vec<GroupId> = self.endpoints.keys().copied().collect();
        for g in groups {
            let (is_member, peer_sites) = {
                let ep = self.endpoints.get(&g).expect("endpoint exists");
                match ep.view() {
                    Some(v) if v.contains(pid) => (true, v.member_sites()),
                    _ => (false, Vec::new()),
                }
            };
            if !is_member {
                continue;
            }
            let mut eouts = self.take_eouts();
            if let Some(ep) = self.endpoints.get_mut(&g) {
                // A local crash is *observed* (the process table lost the entry), not a
                // timeout: confirm it so later traffic from this site never retracts it.
                ep.confirm_failures(self.now, &[pid], &mut eouts);
            }
            self.pump_endpoint_outputs(g, eouts, out);
            // Other sites cannot observe a silent local crash; tell every member site so that
            // whichever of them hosts the acting coordinator starts the view change (the
            // crashed process may itself have been the coordinator).  One report frame is
            // fanned out to every peer site.
            let wire = ProtoMsg::FailReport { failed: vec![pid] }.encode_frame(g);
            for s in peer_sites {
                if s != self.site {
                    self.send_proto(s, PacketKind::Flush, wire.clone(), out);
                }
            }
        }
        self.fail_collectors_for_process(pid, out);
    }

    /// Issues a call (multicast + reply collection) on behalf of `caller`, which must be a
    /// process hosted at this site.  This is the entry point used both by handler actions and
    /// by the system-level convenience API.
    #[allow(clippy::too_many_arguments)]
    pub fn issue_call(
        &mut self,
        caller: ProcessId,
        dests: Vec<Address>,
        entry: EntryId,
        payload: Message,
        protocol: ProtocolKind,
        wanted: ReplyWanted,
        callback: Option<ReplyCallback>,
        out: &mut Outbox,
    ) {
        self.next_session += 1;
        let session = self.next_session;

        let collecting = !matches!(wanted, ReplyWanted::None);
        let mut msg = payload;
        msg.strip_system_fields();
        // Five system fields follow; one reservation instead of repeated growth.
        msg.reserve_fields(5);
        msg.set_sender(caller);
        msg.set_entry(entry);
        msg.set_session(session);
        if collecting {
            // Replies route to `@reply-to` when present and fall back to `@sender` (which
            // is always the caller here), so fire-and-forget sends skip the field.
            msg.set(fields::REPLY_TO, vec![Address::Process(caller)]);
        }
        msg.set(fields::PROTOCOL, protocol.name());

        let mut callback = callback;
        if collecting {
            // Work out which concrete processes we expect replies from.
            let mut awaited: Vec<ProcessId> = Vec::new();
            let mut open_ended = false;
            for d in &dests {
                match d {
                    Address::Process(p) => awaited.push(*p),
                    Address::Group(g) => match self.views.get(g) {
                        Some(v) => awaited.extend(v.members.iter().copied()),
                        None => open_ended = true,
                    },
                }
            }
            let deadline = Some(self.now + self.cfg.rpc_timeout);
            let collector = ReplyCollector::new_with_mode(
                caller, session, awaited, wanted, deadline, open_ended,
            );
            self.collectors.insert(session, collector);
            if let Some(cb) = callback.take() {
                self.callbacks.insert(session, cb);
            }
        }

        // The last destination takes ownership of the message; only fan-outs to several
        // destinations pay for clones (and the common single-destination call pays none).
        let last = dests.len().saturating_sub(1);
        for (i, d) in dests.into_iter().enumerate() {
            match d {
                Address::Group(g) => {
                    msg.set_group(g);
                    let m = if i == last {
                        std::mem::take(&mut msg)
                    } else {
                        msg.clone()
                    };
                    self.multicast_to_group(caller, g, protocol, m, out);
                }
                Address::Process(p) => {
                    if p.site == self.site {
                        self.stats.count_multicast(ProtocolKind::LocalRpc);
                    } else {
                        self.stats.count_multicast(ProtocolKind::Cbcast);
                    }
                    let m = if i == last {
                        std::mem::take(&mut msg)
                    } else {
                        msg.clone()
                    };
                    out.send(Packet::new(caller, p, PacketKind::Data, m));
                }
            }
        }
        // A zero-reply call with a callback (unusual but allowed) completes immediately.
        if matches!(wanted, ReplyWanted::None) {
            if let Some(cb) = callback {
                let outcome = RpcOutcome {
                    replies: Vec::new(),
                    responders: Vec::new(),
                    error: None,
                };
                self.run_continuation(caller, cb, outcome, out);
            }
        } else {
            self.poke_collector(session, out);
        }
    }

    fn multicast_to_group(
        &mut self,
        caller: ProcessId,
        group: GroupId,
        protocol: ProtocolKind,
        msg: Message,
        out: &mut Outbox,
    ) {
        let can_serve_locally = self
            .endpoints
            .get(&group)
            .map(|ep| ep.view().is_some() && !ep.local_members().is_empty())
            .unwrap_or(false);
        if can_serve_locally {
            let mut eouts = self.take_eouts();
            let ep = self.endpoints.get_mut(&group).expect("endpoint exists");
            let res = match protocol {
                ProtocolKind::Abcast => ep.abcast(self.now, caller, msg, &mut eouts).map(|_| ()),
                ProtocolKind::Gbcast => ep.gbcast(self.now, caller, msg, &mut eouts),
                _ => ep.cbcast(self.now, caller, msg, &mut eouts).map(|_| ()),
            };
            if res.is_err() {
                out.trace_with(|| format!("{}: multicast to {group} failed: {res:?}", self.site));
            }
            self.pump_endpoint_outputs(group, eouts, out);
        } else {
            // Not a member site: relay through a contact site (Figure 1's view cache +
            // forwarding path for external clients).
            match self.alive_contact(group) {
                Some(contact) => {
                    self.stats.count_multicast(match protocol {
                        ProtocolKind::Abcast => ProtocolKind::Abcast,
                        ProtocolKind::Gbcast => ProtocolKind::Gbcast,
                        _ => ProtocolKind::Cbcast,
                    });
                    let mut relay = Message::new();
                    relay.set(CTRL, "relay");
                    relay.set("relay-group", group);
                    relay.set("relay-proto", protocol.name());
                    relay.set("relay-payload", msg);
                    out.send(Packet::new(
                        protocols_process(self.site),
                        protocols_process(contact),
                        PacketKind::Control,
                        relay,
                    ));
                }
                None => {
                    out.trace_with(|| format!("{}: no contact site known for {group}", self.site));
                }
            }
        }
    }

    fn alive_contact(&self, group: GroupId) -> Option<SiteId> {
        let candidates = self.contacts.get(&group)?;
        candidates
            .iter()
            .copied()
            .find(|s| *s == self.site || self.fd.is_alive(*s))
            .or_else(|| candidates.first().copied())
    }

    fn send_proto(&self, dst_site: SiteId, kind: PacketKind, msg: Frame, out: &mut Outbox) {
        out.send(Packet::new(
            protocols_process(self.site),
            protocols_process(dst_site),
            kind,
            msg,
        ));
    }

    // -- Endpoint output processing -----------------------------------------------------------

    fn pump_endpoint_outputs(
        &mut self,
        group: GroupId,
        mut outputs: Vec<EndpointOutput>,
        out: &mut Outbox,
    ) {
        for o in outputs.drain(..) {
            match o {
                EndpointOutput::Send {
                    dst_site,
                    kind,
                    msg,
                } => {
                    self.send_proto(dst_site, kind, msg, out);
                }
                EndpointOutput::Deliver(d) => {
                    self.deliver_group_message(group, d, out);
                }
                EndpointOutput::ViewChange(ev) => {
                    self.handle_view_change(group, ev, out);
                }
                EndpointOutput::PartitionStalled {
                    view_seq,
                    alive,
                    voters,
                    ..
                } => {
                    // The endpoint already counted the stall; the stack's job is to make
                    // the wedge observable and leave the endpoint alone — it un-wedges by
                    // itself when suspicions are retracted or rejoins on primary evidence.
                    out.trace_with(|| {
                        format!(
                            "{}: {group} wedged at view {view_seq}: {alive}/{voters} \
                             voters visible (minority partition)",
                            self.site
                        )
                    });
                }
                EndpointOutput::RejoinRequired {
                    contact,
                    observed_seq,
                    ..
                } => {
                    self.handle_rejoin_required(group, contact, observed_seq, out);
                }
            }
        }
        // Return the drained buffer to the scratch slot (unless a re-entrant pump already
        // put a buffer back, or this buffer never grew beyond a fresh allocation).
        if self.eout_scratch.capacity() < outputs.capacity() {
            self.eout_scratch = outputs;
        }
    }

    /// Takes the reusable endpoint-output buffer (empty, capacity retained).
    fn take_eouts(&mut self) -> Vec<EndpointOutput> {
        std::mem::take(&mut self.eout_scratch)
    }

    fn deliver_group_message(&mut self, group: GroupId, delivery: Delivery, out: &mut Outbox) {
        self.stats.count_delivery();
        let Some(entry) = delivery.payload.entry() else {
            return;
        };
        let mut members = std::mem::take(&mut self.member_scratch);
        members.clear();
        if let Some(ep) = self.endpoints.get(&group) {
            // Route by the view the message was delivered in, not whatever is installed
            // now: deliveries emitted at a flush cut are dispatched after the new view is
            // already in place, but they belong to the old view and go to *its* local
            // members — never to a process that joined at the cut, whose transferred
            // snapshot already covers them.
            members.extend_from_slice(ep.delivery_recipients(delivery.view_seq));
        }
        for m in members.drain(..) {
            self.dispatch_entry(m, entry, &delivery.payload, out);
        }
        self.member_scratch = members;
    }

    fn handle_view_change(&mut self, group: GroupId, ev: ViewEvent, out: &mut Outbox) {
        self.views.insert(group, ev.view.clone());
        self.contacts.insert(group, ev.view.member_sites());
        // The join is satisfied the moment its view installs.  This must happen here, not
        // only on the maintenance tick: a join-then-leave inside one tick interval would
        // otherwise leave the entry pending with the joiner absent from the view again,
        // and the retry would re-join a member that left on purpose.
        self.pending_joins
            .retain(|p| !(p.group == group && ev.view.contains(p.joiner)));
        // A new view means the membership machinery is live again (whatever stalled the
        // join — a dead coordinator, a mid-flush crash — has been reconfigured around),
        // so surviving joins restart their backoff from the base cadence.
        for p in self.pending_joins.iter_mut().filter(|p| p.group == group) {
            p.attempts = 0;
        }
        // An installed view also ends any reform of the group here: the lead site founds
        // its view, a follower's rejoin installs one, and an `Operational` verdict ends in
        // a normal join — every reform path terminates exactly here.
        if self.reforms.remove(&group).is_some() {
            out.trace_with(|| format!("{}: reform of {group} complete, view installed", self.site));
        }
        // Tell reply collectors about departed members.
        for departed in ev.view.departed.clone() {
            self.fail_collectors_for_process(departed, out);
        }
        // Notify local monitors.
        let locals: Vec<ProcessId> = self.processes.keys().copied().collect();
        for pid in locals {
            self.dispatch_view_event(pid, &ev, out);
        }
        // GBCAST payloads are delivered exactly at the cut, to the members of the new view.
        let members = ev
            .view
            .members_at(self.site)
            .into_iter()
            .collect::<Vec<_>>();
        for payload in &ev.gbcasts {
            self.stats.count_delivery();
            if let Some(entry) = payload.entry() {
                for m in &members {
                    self.dispatch_entry(*m, entry, payload, out);
                }
            }
        }
    }

    // -- Handler dispatch ---------------------------------------------------------------------

    // The handler borrows the process entry in place while the `ToolCtx` borrows the view
    // and directory tables — disjoint fields, so no remove/re-insert round-trip through the
    // process map per delivery.  Re-entrancy is safe because handlers only *record* actions;
    // `apply_actions` runs after every borrow is released.
    fn dispatch_entry(&mut self, pid: ProcessId, entry: EntryId, msg: &Message, out: &mut Outbox) {
        let Some(process) = self.processes.get_mut(&pid) else {
            return;
        };
        match process.run_filters(msg) {
            FilterDecision::Accept => {}
            FilterDecision::Reject(why) => {
                out.trace_with(|| format!("{pid}: filter rejected message at {entry:?}: {why}"));
                return;
            }
        }
        let actions = {
            let mut ctx = ToolCtx::new(pid, self.now, &self.views, &self.directory)
                .with_stats(self.stats.clone());
            if !process.dispatch(&mut ctx, entry, msg) {
                out.trace_with(|| format!("{pid}: no handler bound at {entry:?}"));
            }
            ctx.take_actions()
        };
        self.apply_actions(pid, actions, out);
    }

    fn dispatch_view_event(&mut self, pid: ProcessId, ev: &ViewEvent, out: &mut Outbox) {
        let Some(process) = self.processes.get_mut(&pid) else {
            return;
        };
        let actions = {
            let mut ctx = ToolCtx::new(pid, self.now, &self.views, &self.directory)
                .with_stats(self.stats.clone());
            process.dispatch_view(&mut ctx, ev);
            ctx.take_actions()
        };
        self.apply_actions(pid, actions, out);
    }

    fn run_continuation(
        &mut self,
        caller: ProcessId,
        callback: ReplyCallback,
        outcome: RpcOutcome,
        out: &mut Outbox,
    ) {
        if !self.processes.contains_key(&caller) {
            return;
        }
        let actions = {
            let mut ctx = ToolCtx::new(caller, self.now, &self.views, &self.directory)
                .with_stats(self.stats.clone());
            callback(&mut ctx, outcome);
            ctx.take_actions()
        };
        self.apply_actions(caller, actions, out);
    }

    fn apply_actions(&mut self, caller: ProcessId, actions: Vec<CtxAction>, out: &mut Outbox) {
        for action in actions {
            match action {
                CtxAction::Call {
                    dests,
                    entry,
                    payload,
                    protocol,
                    wanted,
                    callback,
                } => {
                    self.issue_call(
                        caller, dests, entry, payload, protocol, wanted, callback, out,
                    );
                }
                CtxAction::Reply {
                    request,
                    payload,
                    copies,
                    null,
                } => {
                    self.issue_reply(caller, &request, payload, copies, null, out);
                }
                CtxAction::Join { group, credentials } => {
                    if let Err(e) = self.join_group(group, caller, credentials, out) {
                        out.trace_with(|| format!("{caller}: join {group} failed: {e}"));
                    }
                }
                CtxAction::Leave { group } => {
                    if let Err(e) = self.leave_group(group, caller, out) {
                        out.trace_with(|| format!("{caller}: leave {group} failed: {e}"));
                    }
                }
                CtxAction::Trace(line) => out.trace_with(|| format!("{caller}: {line}")),
            }
        }
    }

    fn issue_reply(
        &mut self,
        caller: ProcessId,
        request: &Message,
        payload: Message,
        copies: Vec<Address>,
        null: bool,
        out: &mut Outbox,
    ) {
        let Some((session, requester)) = reply_target(request) else {
            out.trace_with(|| format!("{caller}: reply to a message without a session"));
            return;
        };
        let mut reply = payload;
        reply.strip_system_fields();
        reply.set_sender(caller);
        reply.set_session(session);
        reply.set_entry(EntryId::REPLY);
        reply.mark_reply(null);
        self.stats.count_multicast(ProtocolKind::Reply);
        out.send(Packet::new(
            caller,
            requester,
            PacketKind::Reply,
            reply.clone(),
        ));
        for c in copies {
            match c {
                Address::Process(p) => {
                    out.send(Packet::new(caller, p, PacketKind::Reply, reply.clone()));
                }
                Address::Group(g) => {
                    // Copies to a whole group travel as a normal CBCAST to that group.
                    let mut copy = reply.clone();
                    copy.set_group(g);
                    self.multicast_to_group(caller, g, ProtocolKind::Cbcast, copy, out);
                }
            }
        }
    }

    // -- Reply collection ----------------------------------------------------------------------

    fn poke_collector(&mut self, session: u64, out: &mut Outbox) {
        let status = match self.collectors.get_mut(&session) {
            Some(c) => c.on_tick(self.now),
            None => return,
        };
        self.finish_collector(session, status, out);
    }

    fn finish_collector(&mut self, session: u64, status: CollectorStatus, out: &mut Outbox) {
        if let CollectorStatus::Done(outcome) = status {
            let caller = self
                .collectors
                .remove(&session)
                .map(|c| c.caller)
                .unwrap_or(protocols_process(self.site));
            if let Some(cb) = self.callbacks.remove(&session) {
                self.run_continuation(caller, cb, outcome, out);
            }
        }
    }

    fn fail_collectors_for_process(&mut self, failed: ProcessId, out: &mut Outbox) {
        let sessions: Vec<u64> = self.collectors.keys().copied().collect();
        for s in sessions {
            let status = match self.collectors.get_mut(&s) {
                Some(c) => c.on_failure(failed),
                None => continue,
            };
            self.finish_collector(s, status, out);
        }
    }

    fn fail_collectors_for_site(&mut self, site: SiteId, out: &mut Outbox) {
        let sessions: Vec<u64> = self.collectors.keys().copied().collect();
        for s in sessions {
            let status = match self.collectors.get_mut(&s) {
                Some(c) => c.on_site_failure(site),
                None => continue,
            };
            self.finish_collector(s, status, out);
        }
    }

    fn handle_reply(&mut self, pkt: &Packet, out: &mut Outbox) {
        let Some(session) = pkt.payload.session() else {
            return;
        };
        let Some(sender) = pkt.payload.sender() else {
            return;
        };
        let status = match self.collectors.get_mut(&session) {
            Some(c) => c.on_reply(sender, pkt.payload.to_message()),
            None => return, // Superfluous replies are discarded silently.
        };
        self.finish_collector(session, status, out);
    }

    // -- Failure handling -----------------------------------------------------------------------

    fn handle_site_failure(&mut self, failed_site: SiteId, out: &mut Outbox) {
        out.trace_with(|| format!("{}: site {failed_site} suspected failed", self.site));
        let groups: Vec<GroupId> = self.endpoints.keys().copied().collect();
        for g in groups {
            let failed_members: Vec<ProcessId> = self
                .endpoints
                .get(&g)
                .and_then(|ep| ep.view().cloned())
                .map(|v| v.members_at(failed_site))
                .unwrap_or_default();
            if failed_members.is_empty() {
                continue;
            }
            let mut eouts = self.take_eouts();
            if let Some(ep) = self.endpoints.get_mut(&g) {
                ep.report_failures(self.now, &failed_members, &mut eouts);
            }
            self.pump_endpoint_outputs(g, eouts, out);
        }
        self.fail_collectors_for_site(failed_site, out);
    }

    /// A suspected site spoke again: the suspicion was a timeout artifact (delay spike or
    /// healed partition), not a crash.  Withdraw it from every group endpoint before any
    /// flush commits around the falsely suspected members.
    fn handle_site_recovery(&mut self, recovered_site: SiteId, out: &mut Outbox) {
        let groups: Vec<GroupId> = self.endpoints.keys().copied().collect();
        for g in groups {
            let mut eouts = self.take_eouts();
            if let Some(ep) = self.endpoints.get_mut(&g) {
                ep.unsuspect_site(self.now, recovered_site, &mut eouts);
            }
            self.pump_endpoint_outputs(g, eouts, out);
        }
    }

    /// The endpoint observed a newer primary view that excludes its local members: its
    /// history past the last shared cut is a divergent minority tail.  Discard the endpoint
    /// (and with it the tail) and rejoin the members through the evidenced contact; the
    /// join-cut state transfer replaces everything the tail contained.
    fn handle_rejoin_required(
        &mut self,
        group: GroupId,
        contact: SiteId,
        observed_seq: u64,
        out: &mut Outbox,
    ) {
        let locals: Vec<ProcessId> = self
            .endpoints
            .get(&group)
            .map(|ep| ep.local_members().to_vec())
            .unwrap_or_default();
        self.stats.with(|s| s.count_rejoin_after_heal());
        out.trace_with(|| {
            format!(
                "{}: {group} diverged from primary view {observed_seq}; \
                 discarding local tail and rejoining via {contact}",
                self.site
            )
        });
        self.endpoints.remove(&group);
        // Route the rejoin through the site that evidenced the primary view, ahead of
        // whatever contacts the stale view left cached.
        let entry = self.contacts.entry(group).or_default();
        entry.retain(|s| *s != contact);
        entry.insert(0, contact);
        for m in locals {
            if let Err(e) = self.join_group(group, m, None, out) {
                out.trace_with(|| format!("{}: rejoin of {m} to {group} failed: {e}", self.site));
            }
        }
    }

    // -- Incoming traffic -----------------------------------------------------------------------

    fn handle_control(&mut self, pkt: &Packet, out: &mut Outbox) {
        match pkt.payload.get_str(CTRL) {
            Some("hb") => {}
            Some("relay") => {
                let Some(group) = pkt
                    .payload
                    .get_addr("relay-group")
                    .and_then(|a| a.as_group())
                else {
                    return;
                };
                let Some(inner) = pkt.payload.get_msg("relay-payload").cloned() else {
                    return;
                };
                let protocol = match pkt.payload.get_str("relay-proto") {
                    Some("ABCAST") => ProtocolKind::Abcast,
                    Some("GBCAST") => ProtocolKind::Gbcast,
                    _ => ProtocolKind::Cbcast,
                };
                let original_sender = inner.sender().unwrap_or(pkt.src);
                self.multicast_to_group(original_sender, group, protocol, inner, out);
            }
            Some(other) => {
                out.trace_with(|| format!("{}: unknown control message {other:?}", self.site));
            }
            None => {}
        }
    }

    fn handle_proto(&mut self, pkt: &Packet, out: &mut Outbox) {
        // One parse per frame: the decode is memoized in the packet's shared frame, so the
        // endpoint's own `decode_frame` below is a cache hit, and when the frame was fanned
        // out to several sites only the first receiving stack pays for the parse at all.
        let Ok((group, decoded)) = ProtoMsg::decode_frame(&pkt.payload) else {
            out.trace_with(|| format!("{}: undecodable protocol message", self.site));
            return;
        };
        let group = *group;
        // Reform traffic is stack-to-stack: it concerns sites whose endpoints are gone
        // (that is the premise), so it must not fault an endpoint into existence below.
        match decoded {
            ProtoMsg::ReformSummary {
                from_site,
                view_seq,
                covered,
                rank,
            } => {
                let summary = LogSummary {
                    site: *from_site,
                    view_seq: *view_seq,
                    covered: covered.clone(),
                    rank: *rank,
                };
                self.handle_reform_summary(group, summary, out);
                return;
            }
            ProtoMsg::ReformAlive { contact } => {
                let contact = *contact;
                if let Some(run) = self.reforms.get_mut(&group) {
                    run.tracker.mark_alive(contact);
                }
                return;
            }
            _ => {}
        }
        // Joins are validated by the protection policy before the protocol layer sees them.
        if let ProtoMsg::JoinReq {
            joiner,
            credentials,
        } = decoded
        {
            if let Some(policy) = self.policies.get(&group) {
                if let Err(why) = policy.validate_join(credentials.as_deref()) {
                    out.trace_with(|| {
                        format!("{}: join of {joiner} to {group} refused: {why}", self.site)
                    });
                    return;
                }
            }
        }
        let mut eouts = self.take_eouts();
        let ep = self.endpoints.entry(group).or_insert_with(|| {
            GroupEndpoint::new(group, self.site, self.proto_cfg, self.stats.clone())
        });
        if let Err(e) = ep.on_message(self.now, pkt.src.site, &pkt.payload, &mut eouts) {
            out.trace_with(|| format!("{}: protocol error in {group}: {e}", self.site));
        }
        self.pump_endpoint_outputs(group, eouts, out);
    }

    fn handle_app_packet(&mut self, pkt: &Packet, out: &mut Outbox) {
        if pkt.payload.is_reply() {
            self.handle_reply(pkt, out);
            return;
        }
        let Some(entry) = pkt.payload.entry() else {
            return;
        };
        self.dispatch_entry(pkt.dst, entry, &pkt.payload, out);
    }
}

impl SiteHandler for SiteStack {
    fn on_start(&mut self, now: SimTime, out: &mut Outbox) {
        self.now = now;
        out.set_timer(self.cfg.tick_interval, TICK);
    }

    fn on_packet(&mut self, now: SimTime, pkt: Packet, out: &mut Outbox) {
        self.now = now;
        if pkt.src.site != self.site {
            // Any traffic from a site proves it is alive.
            if let Some(verdict) = self.fd.on_heartbeat(pkt.src.site, now) {
                out.trace_with(|| format!("{}: {verdict:?}", self.site));
                if matches!(verdict, vsync_net::fail::Verdict::HeardAgain(_)) {
                    self.handle_site_recovery(pkt.src.site, out);
                }
            }
        }
        if ProtoMsg::is_proto_message(&pkt.payload) {
            self.handle_proto(&pkt, out);
        } else if pkt.payload.contains(CTRL) {
            self.handle_control(&pkt, out);
        } else {
            self.handle_app_packet(&pkt, out);
        }
    }

    fn on_timer(&mut self, now: SimTime, token: u64, out: &mut Outbox) {
        self.now = now;
        if token != TICK {
            return;
        }
        // Heartbeats to every other site, rate-limited to the heartbeat period so the
        // cadence stays correct even under a custom config whose tick runs faster than
        // `heartbeat_interval`.  One frame, aliased by every packet.
        let due = match self.last_heartbeat {
            None => true,
            Some(last) => now.saturating_since(last) >= self.cfg.heartbeat_interval,
        };
        if due {
            self.last_heartbeat = Some(now);
            let mut hb = Message::new();
            hb.set(CTRL, "hb");
            let hb = Frame::new(hb);
            for s in &self.all_sites {
                if *s != self.site {
                    out.send(Packet::new(
                        protocols_process(self.site),
                        protocols_process(*s),
                        PacketKind::Heartbeat,
                        hb.clone(),
                    ));
                }
            }
        }
        // Failure detection.
        for verdict in self.fd.tick(now) {
            if let vsync_net::fail::Verdict::Suspected(site) = verdict {
                self.handle_site_failure(site, out);
            }
        }
        // Per-group maintenance.  The id sweep reuses one scratch vector across ticks.
        let mut groups = std::mem::take(&mut self.group_scratch);
        groups.clear();
        groups.extend(self.endpoints.keys().copied());
        for g in groups.drain(..) {
            let mut eouts = self.take_eouts();
            if let Some(ep) = self.endpoints.get_mut(&g) {
                ep.on_tick(now, &mut eouts);
            }
            self.pump_endpoint_outputs(g, eouts, out);
        }
        self.group_scratch = groups;
        // Re-submit joins whose view has still not installed: the first JoinReq, or the
        // coordinator holding the queued join, may have died with a crashed site.  The
        // base cadence (one failure timeout) gives the original attempt time to land, and
        // by then the detector has usually condemned a dead contact so the retry routes
        // around it; repeated failures back off exponentially with deterministic jitter
        // (see `PendingJoin::retry_delay`), resetting whenever a view installs.
        let mut pending = std::mem::take(&mut self.pending_joins);
        pending.retain(|p| {
            let installed = self
                .endpoints
                .get(&p.group)
                .and_then(|ep| ep.view())
                .map(|v| v.contains(p.joiner))
                .unwrap_or(false);
            !installed
        });
        for p in &mut pending {
            if now.saturating_since(p.last_sent) < p.retry_delay(self.cfg.failure_timeout) {
                continue;
            }
            p.last_sent = now;
            p.attempts = p.attempts.saturating_add(1);
            out.trace_with(|| {
                format!(
                    "{}: re-submitting join of {} to {:?}",
                    self.site, p.joiner, p.group
                )
            });
            // A dead contact everywhere leaves the join pending for the next cadence.
            let _ =
                self.submit_join_request(p.group, p.joiner, p.credentials.clone(), p.attempts, out);
        }
        self.pending_joins = pending;
        // Total-failure reforms: advance each election (the deadline can fire one without
        // any packet arriving) and rebroadcast unresolved summaries so lost packets and
        // staggered restarts converge.
        let mut reforms = std::mem::take(&mut self.reforms);
        for (g, run) in reforms.iter_mut() {
            self.advance_reform(*g, run, out);
            if run.tracker.status().is_some() {
                continue;
            }
            if now.saturating_since(run.last_broadcast) >= self.cfg.failure_timeout {
                run.last_broadcast = now;
                self.broadcast_reform_summary(*g, run, out);
            }
        }
        debug_assert!(self.reforms.is_empty(), "re-entrant reform tick");
        self.reforms = reforms;
        // RPC deadlines.
        let sessions: Vec<u64> = self.collectors.keys().copied().collect();
        for s in sessions {
            self.poke_collector(s, out);
        }
        out.set_timer(self.cfg.tick_interval, TICK);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocols_process_is_local_zero() {
        let p = protocols_process(SiteId(3));
        assert_eq!(p.site, SiteId(3));
        assert_eq!(p.local, 0);
    }

    #[test]
    fn join_retry_backoff_doubles_caps_and_jitters_deterministically() {
        let base = Duration::from_millis(100);
        let mk = |attempts| PendingJoin {
            group: GroupId(1),
            joiner: ProcessId::new(SiteId(2), 1),
            credentials: None,
            last_sent: SimTime::ZERO,
            attempts,
        };
        let delays: Vec<Duration> = (0..6).map(|a| mk(a).retry_delay(base)).collect();
        for (a, d) in delays.iter().enumerate() {
            let backoff = base.saturating_mul(1 << (a as u32).min(3));
            // Within [backoff, backoff * 1.25]: never earlier than the cadence, bounded
            // jitter, and the exponent stops doubling after 8x.
            assert!(*d >= backoff, "attempt {a}: {d:?} < {backoff:?}");
            assert!(
                d.as_micros() <= backoff.as_micros() + backoff.as_micros() / 4,
                "attempt {a}: jitter exceeds a quarter of the backoff"
            );
        }
        // Capped: attempts 3.. share the same 8x exponent.
        assert!(delays[4] < base.saturating_mul(16));
        // Deterministic: the same attempt always gets the same jitter.
        assert_eq!(mk(2).retry_delay(base), mk(2).retry_delay(base));
        // Different joiners desynchronise.
        let other = PendingJoin {
            joiner: ProcessId::new(SiteId(3), 1),
            ..mk(2)
        };
        assert_ne!(other.retry_delay(base), mk(2).retry_delay(base));
    }
}
