//! The per-process runtime: entry points, filters, monitors and the [`ToolCtx`] handle.
//!
//! "Each process using ISIS binds routines to any entry point on which it will receive
//! messages. ...  When a message arrives, a new task is started up corresponding to the entry
//! point in its destination address, and the message is passed to this task for processing"
//! (paper Section 4.1).  In this Rust realisation an entry point is a closure; the lightweight
//! task with its blocking calls becomes continuation-passing style: a handler that needs
//! replies issues [`ToolCtx::call`] with a continuation closure, which the stack invokes when
//! the replies (or the failure notification) arrive.

use std::collections::BTreeMap;

use vsync_msg::{fields, Message};
use vsync_net::{ProtocolKind, SharedStats};
use vsync_proto::{View, ViewEvent};
use vsync_util::{Address, EntryId, GroupId, ProcessId, Rank, SimTime};

use crate::protection::FilterDecision;
use crate::rpc::{ReplyWanted, RpcOutcome};

/// Handler bound to an entry point.
pub type EntryHandler = Box<dyn FnMut(&mut ToolCtx<'_>, &Message)>;

/// Handler invoked on every membership change of a monitored group (`pg_monitor`).
pub type MonitorHandler = Box<dyn FnMut(&mut ToolCtx<'_>, &ViewEvent)>;

/// Continuation invoked when a group RPC completes.
pub type ReplyCallback = Box<dyn FnOnce(&mut ToolCtx<'_>, RpcOutcome)>;

/// Message filter (paper Section 4.1): inspects every arriving message before dispatch.
pub type MessageFilter = Box<dyn FnMut(&Message) -> FilterDecision>;

/// An action recorded by a handler through its [`ToolCtx`]; the site stack executes the
/// actions after the handler returns (which is what keeps handlers free of re-entrancy).
pub enum CtxAction {
    /// Multicast (or send point-to-point) a message, optionally collecting replies.
    Call {
        /// Destination list: process and/or group addresses.
        dests: Vec<Address>,
        /// Entry point at the destinations.
        entry: EntryId,
        /// Application payload.
        payload: Message,
        /// Which primitive carries the message.
        protocol: ProtocolKind,
        /// How many replies to wait for.
        wanted: ReplyWanted,
        /// Continuation to run when collection completes (required unless `wanted` is None).
        callback: Option<ReplyCallback>,
    },
    /// Reply to a request received earlier.
    Reply {
        /// The request being answered (carries the session id and reply address).
        request: Message,
        /// Reply payload.
        payload: Message,
        /// Additional processes that should receive a copy of the reply (`reply_cc`).
        copies: Vec<Address>,
        /// True for a null reply.
        null: bool,
    },
    /// Ask to join a group (used by recovery / restart logic inside handlers).
    Join {
        /// The group to join.
        group: GroupId,
        /// Credentials checked by the protection tool.
        credentials: Option<String>,
    },
    /// Leave a group voluntarily.
    Leave {
        /// The group to leave.
        group: GroupId,
    },
    /// Emit a trace line (visible through the engine's trace log).
    Trace(String),
}

/// The toolkit handle passed to every entry handler, monitor and continuation.
pub struct ToolCtx<'a> {
    me: ProcessId,
    now: SimTime,
    views: &'a BTreeMap<GroupId, View>,
    directory: &'a BTreeMap<String, GroupId>,
    actions: Vec<CtxAction>,
    stats: Option<SharedStats>,
}

impl<'a> ToolCtx<'a> {
    /// Creates a context (called by the site stack before dispatching a handler).
    pub fn new(
        me: ProcessId,
        now: SimTime,
        views: &'a BTreeMap<GroupId, View>,
        directory: &'a BTreeMap<String, GroupId>,
    ) -> Self {
        ToolCtx {
            me,
            now,
            views,
            directory,
            actions: Vec::new(),
            stats: None,
        }
    }

    /// Attaches the site's statistics counters (called by the site stack; contexts built
    /// without them — e.g. in unit tests — simply have no counters to bump).
    pub fn with_stats(mut self, stats: SharedStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The site's statistics counters, when attached.  Tools bump cluster-visible
    /// counters (e.g. transfer buffer overflows) through this.
    pub fn stats(&self) -> Option<&SharedStats> {
        self.stats.as_ref()
    }

    /// The process this handler runs in.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Current (virtual) time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// `pg_lookup`: resolves a symbolic group name.
    pub fn lookup(&self, name: &str) -> Option<GroupId> {
        self.directory.get(name).copied()
    }

    /// The current view of a group known to this site.
    pub fn view_of(&self, group: GroupId) -> Option<&View> {
        self.views.get(&group)
    }

    /// This process's rank in a group it belongs to.
    pub fn my_rank(&self, group: GroupId) -> Option<Rank> {
        self.view_of(group).and_then(|v| v.rank_of(self.me))
    }

    /// Drains the recorded actions (called by the site stack).
    pub fn take_actions(&mut self) -> Vec<CtxAction> {
        std::mem::take(&mut self.actions)
    }

    /// Asynchronous multicast: send and continue immediately (no replies collected).
    pub fn send(
        &mut self,
        dest: impl Into<Address>,
        entry: EntryId,
        payload: Message,
        protocol: ProtocolKind,
    ) {
        self.actions.push(CtxAction::Call {
            dests: vec![dest.into()],
            entry,
            payload,
            protocol,
            wanted: ReplyWanted::None,
            callback: None,
        });
    }

    /// Group RPC: multicast a request and run `callback` when the requested number of
    /// replies has been collected (or every destination has failed).
    pub fn call(
        &mut self,
        dests: Vec<Address>,
        entry: EntryId,
        payload: Message,
        protocol: ProtocolKind,
        wanted: ReplyWanted,
        callback: impl FnOnce(&mut ToolCtx<'_>, RpcOutcome) + 'static,
    ) {
        self.actions.push(CtxAction::Call {
            dests,
            entry,
            payload,
            protocol,
            wanted,
            callback: Some(Box::new(callback)),
        });
    }

    /// Replies to a request.
    pub fn reply(&mut self, request: &Message, payload: Message) {
        self.actions.push(CtxAction::Reply {
            request: request.clone(),
            payload,
            copies: Vec::new(),
            null: false,
        });
    }

    /// Replies to a request, also sending copies of the reply to `copies`
    /// (the paper's `reply_cc`, used by the coordinator–cohort tool).
    pub fn reply_with_copies(&mut self, request: &Message, payload: Message, copies: Vec<Address>) {
        self.actions.push(CtxAction::Reply {
            request: request.clone(),
            payload,
            copies,
            null: false,
        });
    }

    /// Sends a null reply: tells the caller not to wait for a real reply from this process.
    pub fn null_reply(&mut self, request: &Message) {
        self.actions.push(CtxAction::Reply {
            request: request.clone(),
            payload: Message::new(),
            copies: Vec::new(),
            null: true,
        });
    }

    /// Requests to join a group.
    pub fn join(&mut self, group: GroupId, credentials: Option<String>) {
        self.actions.push(CtxAction::Join { group, credentials });
    }

    /// Requests to leave a group.
    pub fn leave(&mut self, group: GroupId) {
        self.actions.push(CtxAction::Leave { group });
    }

    /// Emits a trace line.
    pub fn trace(&mut self, line: impl Into<String>) {
        self.actions.push(CtxAction::Trace(line.into()));
    }
}

/// A process: its entry-point table, group monitors and message filters.
pub struct IsisProcess {
    /// The process identity.
    pub id: ProcessId,
    entries: BTreeMap<EntryId, EntryHandler>,
    monitors: Vec<(GroupId, MonitorHandler)>,
    filters: Vec<MessageFilter>,
}

impl IsisProcess {
    /// Creates an empty process.
    pub fn new(id: ProcessId) -> Self {
        IsisProcess {
            id,
            entries: BTreeMap::new(),
            monitors: Vec::new(),
            filters: Vec::new(),
        }
    }

    /// Binds a handler to an entry point, replacing any previous binding.
    pub fn bind_entry(&mut self, entry: EntryId, handler: EntryHandler) {
        self.entries.insert(entry, handler);
    }

    /// Registers a `pg_monitor` callback for a group.
    pub fn add_monitor(&mut self, group: GroupId, handler: MonitorHandler) {
        self.monitors.push((group, handler));
    }

    /// Adds a message filter; filters run in registration order before dispatch.
    pub fn add_filter(&mut self, filter: MessageFilter) {
        self.filters.push(filter);
    }

    /// True if the process has a handler for `entry`.
    pub fn has_entry(&self, entry: EntryId) -> bool {
        self.entries.contains_key(&entry)
    }

    /// Runs the filter chain over an arriving message.
    pub fn run_filters(&mut self, msg: &Message) -> FilterDecision {
        for f in &mut self.filters {
            match f(msg) {
                FilterDecision::Accept => continue,
                other => return other,
            }
        }
        FilterDecision::Accept
    }

    /// Dispatches a message to the handler bound to `entry` (if any).
    pub fn dispatch(&mut self, ctx: &mut ToolCtx<'_>, entry: EntryId, msg: &Message) -> bool {
        if let Some(handler) = self.entries.get_mut(&entry) {
            handler(ctx, msg);
            true
        } else {
            false
        }
    }

    /// Dispatches a view event to every monitor registered for the group.
    pub fn dispatch_view(&mut self, ctx: &mut ToolCtx<'_>, event: &ViewEvent) {
        for (g, handler) in &mut self.monitors {
            if *g == event.view.group() {
                handler(ctx, event);
            }
        }
    }
}

/// Builder used by [`crate::system::IsisSystem::spawn`] to assemble a process declaratively.
pub struct ProcessBuilder {
    process: IsisProcess,
}

impl ProcessBuilder {
    /// Creates a builder for the given process id.
    pub fn new(id: ProcessId) -> Self {
        ProcessBuilder {
            process: IsisProcess::new(id),
        }
    }

    /// The id of the process being built.
    pub fn id(&self) -> ProcessId {
        self.process.id
    }

    /// Binds an entry handler.
    pub fn on_entry(
        &mut self,
        entry: EntryId,
        handler: impl FnMut(&mut ToolCtx<'_>, &Message) + 'static,
    ) -> &mut Self {
        self.process.bind_entry(entry, Box::new(handler));
        self
    }

    /// Registers a group monitor.
    pub fn on_view_change(
        &mut self,
        group: GroupId,
        handler: impl FnMut(&mut ToolCtx<'_>, &ViewEvent) + 'static,
    ) -> &mut Self {
        self.process.add_monitor(group, Box::new(handler));
        self
    }

    /// Adds a message filter.
    pub fn with_filter(
        &mut self,
        filter: impl FnMut(&Message) -> FilterDecision + 'static,
    ) -> &mut Self {
        self.process.add_filter(Box::new(filter));
        self
    }

    /// Finishes construction.
    pub fn build(self) -> IsisProcess {
        self.process
    }
}

/// Extracts the reply session and requester from a request message, as used by the stack when
/// executing a [`CtxAction::Reply`].
pub fn reply_target(request: &Message) -> Option<(u64, ProcessId)> {
    let session = request.session()?;
    let requester = request
        .get_addr_list(fields::REPLY_TO)
        .and_then(|l| l.first().copied())
        .and_then(|a| a.as_process())
        .or_else(|| request.sender())?;
    Some((session, requester))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vsync_util::SiteId;

    fn pid() -> ProcessId {
        ProcessId::new(SiteId(0), 1)
    }

    #[test]
    fn ctx_records_actions_in_order() {
        let views = BTreeMap::new();
        let directory = BTreeMap::new();
        let mut ctx = ToolCtx::new(pid(), SimTime(5), &views, &directory);
        ctx.send(
            GroupId(1),
            EntryId(3),
            Message::with_body(1u64),
            ProtocolKind::Cbcast,
        );
        ctx.trace("hello");
        ctx.leave(GroupId(1));
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 3);
        assert!(matches!(actions[0], CtxAction::Call { .. }));
        assert!(matches!(actions[1], CtxAction::Trace(_)));
        assert!(matches!(actions[2], CtxAction::Leave { .. }));
        assert!(ctx.take_actions().is_empty(), "take drains");
    }

    #[test]
    fn ctx_view_and_directory_lookups() {
        let mut views = BTreeMap::new();
        let me = pid();
        views.insert(GroupId(7), View::founding(GroupId(7), me));
        let mut directory = BTreeMap::new();
        directory.insert("twenty".to_owned(), GroupId(7));
        let ctx = ToolCtx::new(me, SimTime(0), &views, &directory);
        assert_eq!(ctx.lookup("twenty"), Some(GroupId(7)));
        assert_eq!(ctx.lookup("nope"), None);
        assert_eq!(ctx.my_rank(GroupId(7)), Some(0));
        assert_eq!(ctx.my_rank(GroupId(8)), None);
        assert_eq!(ctx.me(), me);
        assert_eq!(ctx.now(), SimTime(0));
    }

    #[test]
    fn process_dispatch_and_entries() {
        let views = BTreeMap::new();
        let directory = BTreeMap::new();
        let mut proc = IsisProcess::new(pid());
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        proc.bind_entry(
            EntryId(1),
            Box::new(move |_ctx, msg| {
                seen2.borrow_mut().push(msg.get_u64("body").unwrap_or(0));
            }),
        );
        assert!(proc.has_entry(EntryId(1)));
        assert!(!proc.has_entry(EntryId(2)));
        let mut ctx = ToolCtx::new(pid(), SimTime(0), &views, &directory);
        assert!(proc.dispatch(&mut ctx, EntryId(1), &Message::with_body(9u64)));
        assert!(!proc.dispatch(&mut ctx, EntryId(2), &Message::with_body(9u64)));
        assert_eq!(*seen.borrow(), vec![9]);
    }

    #[test]
    fn monitors_fire_only_for_their_group() {
        let views = BTreeMap::new();
        let directory = BTreeMap::new();
        let count = std::rc::Rc::new(std::cell::RefCell::new(0));
        let c2 = count.clone();
        let mut proc = IsisProcess::new(pid());
        proc.add_monitor(
            GroupId(1),
            Box::new(move |_ctx, _ev| {
                *c2.borrow_mut() += 1;
            }),
        );
        let mut ctx = ToolCtx::new(pid(), SimTime(0), &views, &directory);
        let ev1 = ViewEvent {
            view: View::founding(GroupId(1), pid()),
            gbcasts: vec![],
            covered: Default::default(),
        };
        let ev2 = ViewEvent {
            view: View::founding(GroupId(2), pid()),
            gbcasts: vec![],
            covered: Default::default(),
        };
        proc.dispatch_view(&mut ctx, &ev1);
        proc.dispatch_view(&mut ctx, &ev2);
        assert_eq!(*count.borrow(), 1);
    }

    #[test]
    fn filters_run_in_order_and_short_circuit() {
        let mut proc = IsisProcess::new(pid());
        proc.add_filter(Box::new(|m: &Message| {
            if m.contains("bad") {
                FilterDecision::Reject("bad field".into())
            } else {
                FilterDecision::Accept
            }
        }));
        proc.add_filter(Box::new(|_m: &Message| FilterDecision::Accept));
        assert_eq!(
            proc.run_filters(&Message::with_body(1u64)),
            FilterDecision::Accept
        );
        assert!(matches!(
            proc.run_filters(&Message::new().with("bad", 1u64)),
            FilterDecision::Reject(_)
        ));
    }

    #[test]
    fn reply_target_extraction() {
        let mut req = Message::with_body(1u64);
        req.set_session(42);
        req.set_sender(pid());
        assert_eq!(reply_target(&req), Some((42, pid())));
        let other = ProcessId::new(SiteId(3), 9);
        req.set(fields::REPLY_TO, vec![Address::Process(other)]);
        assert_eq!(reply_target(&req), Some((42, other)));
        assert_eq!(reply_target(&Message::new()), None);
    }

    #[test]
    fn builder_composes_a_process() {
        let mut b = ProcessBuilder::new(pid());
        b.on_entry(EntryId(1), |_ctx, _m| {})
            .on_view_change(GroupId(1), |_ctx, _e| {})
            .with_filter(|_m| FilterDecision::Accept);
        let p = b.build();
        assert!(p.has_entry(EntryId(1)));
        assert_eq!(p.id, pid());
    }
}
