//! [`IsisSystem`]: the harness that assembles a simulated ISIS cluster.
//!
//! The system owns the discrete-event [`Engine`], one [`SiteStack`] per site, and exposes the
//! operations an application developer performs from outside a handler: spawning processes,
//! creating and joining process groups, issuing group RPCs, injecting failures and running
//! virtual time.  Examples, integration tests and the benchmark harness are all written
//! against this type.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_net::{Engine, NetStats, Outbox, ProtocolKind, SharedStats};
use vsync_proto::{ProtoConfig, View};
use vsync_util::{
    Address, Duration, EntryId, GroupId, LatencyProfile, NetParams, ProcessId, Rank, Result,
    SimTime, SiteId, VsError,
};

use crate::config::StackConfig;
use crate::process::{ProcessBuilder, ToolCtx};
use crate::protection::ProtectionPolicy;
use crate::rpc::{ReplyWanted, RpcOutcome};
use crate::stack::SiteStack;
use vsync_msg::Message;

/// Builder for an [`IsisSystem`].
pub struct SystemBuilder {
    num_sites: usize,
    params: NetParams,
    profile: LatencyProfile,
    seed: u64,
    stack_cfg: Option<StackConfig>,
    proto_cfg: Option<ProtoConfig>,
    collect_traces: bool,
}

impl SystemBuilder {
    /// Starts building a cluster of `num_sites` sites with the `Modern` latency profile.
    pub fn new(num_sites: usize) -> Self {
        SystemBuilder {
            num_sites,
            params: NetParams::modern(),
            profile: LatencyProfile::Modern,
            seed: 42,
            stack_cfg: None,
            proto_cfg: None,
            collect_traces: false,
        }
    }

    /// Enables trace collection ([`IsisSystem::traces`]).  Off by default: the repro
    /// harness and benches process millions of events and should not pay for diagnostic
    /// strings they never read.
    pub fn collect_traces(mut self, on: bool) -> Self {
        self.collect_traces = on;
        self
    }

    /// Selects a named latency profile (the `Paper1987` profile reproduces Figures 2 and 3).
    pub fn profile(mut self, profile: LatencyProfile) -> Self {
        self.profile = profile;
        self.params = NetParams::for_profile(profile);
        self
    }

    /// Overrides the network parameters (loss injection, custom delays, ...).
    pub fn params(mut self, params: NetParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the stack configuration.
    pub fn stack_config(mut self, cfg: StackConfig) -> Self {
        self.stack_cfg = Some(cfg);
        self
    }

    /// Overrides the protocol configuration.
    pub fn proto_config(mut self, cfg: ProtoConfig) -> Self {
        self.proto_cfg = Some(cfg);
        self
    }

    /// Builds the system: creates the engine and installs one protocols process per site.
    pub fn build(self) -> IsisSystem {
        let stack_cfg = self
            .stack_cfg
            .unwrap_or_else(|| StackConfig::from_params(&self.params));
        let proto_cfg = self.proto_cfg.unwrap_or(match self.profile {
            LatencyProfile::Paper1987 => ProtoConfig::default(),
            _ => ProtoConfig::fast(),
        });
        let mut engine = Engine::new(self.num_sites, self.params, self.seed);
        engine.set_trace_collection(self.collect_traces);
        let stats = engine.stats();
        let all_sites: Vec<SiteId> = (0..self.num_sites as u16).map(SiteId).collect();
        for s in &all_sites {
            let stack = SiteStack::new(*s, all_sites.clone(), stack_cfg, proto_cfg, stats.clone());
            engine.install_site(*s, Box::new(stack));
        }
        IsisSystem {
            engine,
            stats,
            all_sites,
            stack_cfg,
            proto_cfg,
            next_group: 0,
            next_local: vec![1; self.num_sites],
        }
    }
}

/// A running (simulated) ISIS cluster.
pub struct IsisSystem {
    engine: Engine,
    stats: SharedStats,
    all_sites: Vec<SiteId>,
    stack_cfg: StackConfig,
    proto_cfg: ProtoConfig,
    next_group: u64,
    next_local: Vec<u32>,
}

impl IsisSystem {
    /// Starts a builder.
    pub fn builder(num_sites: usize) -> SystemBuilder {
        SystemBuilder::new(num_sites)
    }

    /// Convenience constructor: `num_sites` sites with the given latency profile.
    pub fn new(num_sites: usize, profile: LatencyProfile) -> Self {
        SystemBuilder::new(num_sites).profile(profile).build()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Number of simulation events processed so far (progress/liveness measure for tests
    /// and benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// The sites in the cluster.
    pub fn sites(&self) -> &[SiteId] {
        &self.all_sites
    }

    /// Shared statistics counters (multicasts, packets, bytes).
    pub fn stats(&self) -> NetStats {
        self.stats.snapshot()
    }

    /// Resets the statistics counters (used between benchmark phases).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Trace lines emitted by stacks and handlers so far.  Empty unless the system was
    /// built with [`SystemBuilder::collect_traces`] enabled.
    pub fn traces(&self) -> Vec<String> {
        self.engine
            .traces()
            .iter()
            .map(|(t, s)| format!("[{:?}] {s}", t))
            .collect()
    }

    /// Runs the simulation for a span of virtual time.
    pub fn run_for(&mut self, d: Duration) {
        self.engine.run_for(d);
    }

    /// Runs the simulation until an absolute virtual time.
    pub fn run_until(&mut self, t: SimTime) {
        self.engine.run_until(t);
    }

    /// Runs the simulation for a number of virtual milliseconds.
    pub fn run_ms(&mut self, ms: u64) {
        self.run_for(Duration::from_millis(ms));
    }

    /// Step used by the polling helpers (`join_and_wait`, `client_call`, ...).  It is capped
    /// at one millisecond so that latency measurements are not quantised by the (much longer)
    /// maintenance tick of slow profiles.
    fn poll_step(&self) -> Duration {
        self.stack_cfg.tick_interval.min(Duration::from_millis(1))
    }

    /// Spawns a client process at `site`, configured through a [`ProcessBuilder`] closure.
    pub fn spawn(
        &mut self,
        site: SiteId,
        configure: impl FnOnce(&mut ProcessBuilder),
    ) -> ProcessId {
        let local = self.next_local[site.index()];
        self.next_local[site.index()] += 1;
        let pid = ProcessId::new(site, local);
        let mut builder = ProcessBuilder::new(pid);
        configure(&mut builder);
        let process = builder.build();
        self.engine
            .with_site::<SiteStack, _>(site, |stack, _now, _out| stack.add_process(process))
            .expect("site is up");
        pid
    }

    /// Pre-allocates a group id, so that processes whose tools need to know the id can be
    /// spawned before the group is actually created (pass the id to
    /// [`IsisSystem::create_group_with_id`]).
    pub fn allocate_group_id(&mut self) -> GroupId {
        self.next_group += 1;
        GroupId(self.next_group)
    }

    /// Creates a process group named `name` with `creator` as its only member, and registers
    /// the name in every site's namespace cache.
    pub fn create_group(&mut self, name: &str, creator: ProcessId) -> GroupId {
        self.create_group_with_policy(name, creator, ProtectionPolicy::open())
    }

    /// Creates a group using a pre-allocated id (see [`IsisSystem::allocate_group_id`]).
    pub fn create_group_with_id(
        &mut self,
        name: &str,
        gid: GroupId,
        creator: ProcessId,
    ) -> GroupId {
        self.create_group_inner(name, gid, creator, ProtectionPolicy::open())
    }

    /// Creates a group with a protection policy (join credentials, trusted senders).
    pub fn create_group_with_policy(
        &mut self,
        name: &str,
        creator: ProcessId,
        policy: ProtectionPolicy,
    ) -> GroupId {
        let gid = self.allocate_group_id();
        self.create_group_inner(name, gid, creator, policy)
    }

    fn create_group_inner(
        &mut self,
        name: &str,
        gid: GroupId,
        creator: ProcessId,
        policy: ProtectionPolicy,
    ) -> GroupId {
        let creator_site = creator.site;
        self.engine
            .with_site::<SiteStack, _>(creator_site, |stack, _now, out| {
                stack.set_policy(gid, policy.clone());
                stack.create_group(name, gid, creator, out);
            })
            .expect("creator site is up");
        // The namespace service makes the name visible everywhere.
        let name = name.to_owned();
        for s in self.all_sites.clone() {
            self.engine
                .with_site::<SiteStack, _>(s, |stack, _now, _out| {
                    stack.register_group(&name, gid, vec![creator_site]);
                    stack.set_policy(gid, policy.clone());
                });
        }
        gid
    }

    /// `pg_lookup` as seen from a given site's namespace cache.
    pub fn lookup(&mut self, site: SiteId, name: &str) -> Option<GroupId> {
        self.engine
            .with_site::<SiteStack, _>(site, |stack, _now, _out| stack.lookup(name))
            .flatten()
    }

    /// Issues a join request for `joiner` and runs the simulation until the join completes.
    pub fn join_and_wait(
        &mut self,
        group: GroupId,
        joiner: ProcessId,
        credentials: Option<String>,
        max_wait: Duration,
    ) -> Result<()> {
        let site = joiner.site;
        let res = self
            .engine
            .with_site::<SiteStack, _>(site, |stack, _now, out| {
                stack.join_group(group, joiner, credentials, out)
            })
            .ok_or(VsError::NoSuchProcess(joiner))?;
        res?;
        let deadline = self.now() + max_wait;
        let step = self.poll_step();
        while self.now() < deadline {
            self.run_for(step);
            if self
                .view_of(site, group)
                .map(|v| v.contains(joiner))
                .unwrap_or(false)
            {
                return Ok(());
            }
        }
        Err(VsError::Timeout(format!("join of {joiner} to {group}")))
    }

    /// Asks `member` to leave `group` and waits for the view change to install.
    pub fn leave_and_wait(
        &mut self,
        group: GroupId,
        member: ProcessId,
        max_wait: Duration,
    ) -> Result<()> {
        let site = member.site;
        let res = self
            .engine
            .with_site::<SiteStack, _>(site, |stack, _now, out| {
                stack.leave_group(group, member, out)
            })
            .ok_or(VsError::NoSuchProcess(member))?;
        res?;
        let deadline = self.now() + max_wait;
        let step = self.poll_step();
        while self.now() < deadline {
            self.run_for(step);
            let gone = self
                .view_of(site, group)
                .map(|v| !v.contains(member))
                .unwrap_or(true);
            if gone {
                return Ok(());
            }
        }
        Err(VsError::Timeout(format!("leave of {member} from {group}")))
    }

    /// The view a site currently has of a group.
    pub fn view_of(&mut self, site: SiteId, group: GroupId) -> Option<View> {
        self.engine
            .with_site::<SiteStack, _>(site, |stack, _now, _out| stack.view_of(group).cloned())
            .flatten()
    }

    /// The rank of a member in the group, as seen from its own site.
    pub fn rank_of(&mut self, group: GroupId, member: ProcessId) -> Option<Rank> {
        self.view_of(member.site, group)?.rank_of(member)
    }

    /// True if the process is currently alive.
    pub fn process_exists(&mut self, pid: ProcessId) -> bool {
        self.engine
            .with_site::<SiteStack, _>(pid.site, |stack, _now, _out| stack.has_process(pid))
            .unwrap_or(false)
    }

    /// Fire-and-forget multicast from `caller` (asynchronous: the caller continues at once).
    /// If the caller's site has crashed the send is silently dropped, matching what a real
    /// crashed process would (fail to) do.
    pub fn client_send(
        &mut self,
        caller: ProcessId,
        dest: impl Into<Address>,
        entry: EntryId,
        payload: Message,
        protocol: ProtocolKind,
    ) {
        let dest = dest.into();
        let _ = self
            .engine
            .with_site::<SiteStack, _>(caller.site, |stack, _now, out| {
                stack.issue_call(
                    caller,
                    vec![dest],
                    entry,
                    payload,
                    protocol,
                    ReplyWanted::None,
                    None,
                    out,
                );
            });
    }

    /// Group RPC issued from outside a handler: multicasts the request and runs the
    /// simulation until the reply collection completes (or `max_wait` passes).
    #[allow(clippy::too_many_arguments)]
    pub fn client_call(
        &mut self,
        caller: ProcessId,
        dests: Vec<Address>,
        entry: EntryId,
        payload: Message,
        protocol: ProtocolKind,
        wanted: ReplyWanted,
        max_wait: Duration,
    ) -> RpcOutcome {
        let slot: Rc<RefCell<Option<RpcOutcome>>> = Rc::new(RefCell::new(None));
        let slot2 = slot.clone();
        self.engine
            .with_site::<SiteStack, _>(caller.site, |stack, _now, out| {
                stack.issue_call(
                    caller,
                    dests,
                    entry,
                    payload,
                    protocol,
                    wanted,
                    Some(Box::new(
                        move |_ctx: &mut ToolCtx<'_>, outcome: RpcOutcome| {
                            *slot2.borrow_mut() = Some(outcome);
                        },
                    )),
                    out,
                );
            })
            .expect("caller site is up");
        let deadline = self.now() + max_wait;
        let step = self.poll_step();
        while slot.borrow().is_none() && self.now() < deadline {
            self.run_for(step);
        }
        let result = slot.borrow_mut().take();
        result.unwrap_or(RpcOutcome {
            replies: Vec::new(),
            responders: Vec::new(),
            error: Some(VsError::Timeout("client call never completed".into())),
        })
    }

    /// Crashes an entire site (all its processes and its protocols process).
    pub fn kill_site(&mut self, site: SiteId) {
        self.engine.kill_site(site);
    }

    /// Schedules a site crash at an absolute virtual time.
    pub fn schedule_site_crash(&mut self, at: SimTime, site: SiteId) {
        self.engine.schedule_crash(at, site);
    }

    /// Recovers a crashed site with a fresh, empty protocols process.  Application state must
    /// be rebuilt by the application (typically through the recovery-manager tool and logs).
    pub fn recover_site(&mut self, site: SiteId) {
        let stack = SiteStack::new(
            site,
            self.all_sites.clone(),
            self.stack_cfg,
            self.proto_cfg,
            self.stats.clone(),
        );
        self.engine.recover_site(site, Box::new(stack));
    }

    /// Crashes a single client process, leaving its site up.
    pub fn kill_process(&mut self, pid: ProcessId) {
        self.engine
            .with_site::<SiteStack, _>(pid.site, |stack, _now, out| {
                stack.crash_local_process(pid, out)
            });
    }

    /// True if the site is currently operational.
    pub fn site_is_up(&self, site: SiteId) -> bool {
        self.engine.site_is_up(site)
    }

    /// Runs the simulation until `condition` holds or `max_wait` elapses; returns whether the
    /// condition was met.
    pub fn run_until_condition(
        &mut self,
        max_wait: Duration,
        mut condition: impl FnMut(&mut IsisSystem) -> bool,
    ) -> bool {
        let deadline = self.now() + max_wait;
        let step = self.poll_step();
        loop {
            if condition(self) {
                return true;
            }
            if self.now() >= deadline {
                return false;
            }
            self.run_for(step);
        }
    }

    /// Direct access to a site's stack, for tools and benchmarks that need to reach below the
    /// system API (e.g. registering namespace entries after a recovery).
    pub fn with_stack<R>(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut SiteStack, SimTime, &mut Outbox) -> R,
    ) -> Option<R> {
        self.engine.with_site::<SiteStack, _>(site, f)
    }

    /// Number of multicasts `site` has received in the group's current view that are not
    /// yet known stable.  Join-under-load tests read this right before submitting a join
    /// to prove the join really races in-flight traffic.
    pub fn unstable_count(&mut self, site: SiteId, group: GroupId) -> usize {
        self.with_stack(site, |stack, _now, _out| stack.unstable_count(group))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use vsync_msg::Message;

    const QUERY: EntryId = EntryId(10);

    /// Spawns a member process that appends every delivered body to a shared log and replies
    /// with `reply_value`.
    fn spawn_member(
        sys: &mut IsisSystem,
        site: SiteId,
        log: Rc<RefCell<Vec<u64>>>,
        reply_value: u64,
    ) -> ProcessId {
        sys.spawn(site, |b| {
            b.on_entry(QUERY, move |ctx, msg| {
                log.borrow_mut().push(msg.get_u64("body").unwrap_or(0));
                ctx.reply(msg, Message::with_body(reply_value));
            });
        })
    }

    type Deployment = (
        IsisSystem,
        GroupId,
        Vec<ProcessId>,
        Vec<Rc<RefCell<Vec<u64>>>>,
    );

    fn build_group_of_three() -> Deployment {
        let mut sys = IsisSystem::new(4, LatencyProfile::Modern);
        let logs: Vec<Rc<RefCell<Vec<u64>>>> =
            (0..3).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
        let members: Vec<ProcessId> = (0..3)
            .map(|i| spawn_member(&mut sys, SiteId(i as u16), logs[i].clone(), 100 + i as u64))
            .collect();
        let gid = sys.create_group("svc", members[0]);
        for m in &members[1..] {
            sys.join_and_wait(gid, *m, None, Duration::from_secs(5))
                .expect("join");
        }
        (sys, gid, members, logs)
    }

    #[test]
    fn group_formation_and_ranks() {
        let (mut sys, gid, members, _logs) = build_group_of_three();
        for (i, m) in members.iter().enumerate() {
            assert_eq!(sys.rank_of(gid, *m), Some(i), "rank of member {i}");
        }
        let v = sys.view_of(SiteId(0), gid).unwrap();
        assert_eq!(v.members, members);
        assert_eq!(sys.lookup(SiteId(3), "svc"), Some(gid));
        assert_eq!(sys.lookup(SiteId(3), "absent"), None);
    }

    #[test]
    fn group_rpc_collects_all_replies() {
        let (mut sys, gid, _members, logs) = build_group_of_three();
        let client = sys.spawn(SiteId(3), |_| {});
        let outcome = sys.client_call(
            client,
            vec![Address::Group(gid)],
            QUERY,
            Message::with_body(7u64),
            ProtocolKind::Cbcast,
            ReplyWanted::Count(3),
            Duration::from_secs(5),
        );
        assert!(outcome.is_ok(), "error: {:?}", outcome.error);
        let mut values: Vec<u64> = outcome
            .replies
            .iter()
            .filter_map(|r| r.get_u64("body"))
            .collect();
        values.sort_unstable();
        assert_eq!(values, vec![100, 101, 102]);
        // Every member saw the query exactly once.
        for log in &logs {
            assert_eq!(log.borrow().as_slice(), &[7]);
        }
    }

    #[test]
    fn asynchronous_cbcast_reaches_all_members() {
        let (mut sys, gid, members, logs) = build_group_of_three();
        sys.client_send(
            members[0],
            gid,
            QUERY,
            Message::with_body(55u64),
            ProtocolKind::Cbcast,
        );
        sys.run_ms(200);
        for log in &logs {
            assert_eq!(log.borrow().as_slice(), &[55]);
        }
    }

    #[test]
    fn member_failure_installs_new_view_everywhere() {
        let (mut sys, gid, members, _logs) = build_group_of_three();
        sys.kill_site(SiteId(2));
        let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
            s.view_of(SiteId(0), gid)
                .map(|v| v.len() == 2)
                .unwrap_or(false)
                && s.view_of(SiteId(1), gid)
                    .map(|v| v.len() == 2)
                    .unwrap_or(false)
        });
        assert!(ok, "surviving members never installed the two-member view");
        let v = sys.view_of(SiteId(0), gid).unwrap();
        assert_eq!(v.members, vec![members[0], members[1]]);
    }

    #[test]
    fn rpc_to_a_fully_failed_group_reports_an_error() {
        let mut sys = IsisSystem::new(3, LatencyProfile::Modern);
        let member = sys.spawn(SiteId(0), |b| {
            b.on_entry(QUERY, |ctx, msg| ctx.reply(msg, Message::with_body(1u64)));
        });
        let gid = sys.create_group("lonely", member);
        sys.run_ms(50);
        sys.kill_site(SiteId(0));
        sys.run_ms(50);
        let client = sys.spawn(SiteId(2), |_| {});
        let outcome = sys.client_call(
            client,
            vec![Address::Group(gid)],
            QUERY,
            Message::with_body(1u64),
            ProtocolKind::Cbcast,
            ReplyWanted::One,
            Duration::from_secs(3),
        );
        assert!(outcome.error.is_some(), "caller must get an error code");
    }

    #[test]
    fn protection_policy_rejects_bad_join_credentials() {
        let mut sys = IsisSystem::new(2, LatencyProfile::Modern);
        let creator = sys.spawn(SiteId(0), |_| {});
        let gid = sys.create_group_with_policy(
            "secure",
            creator,
            ProtectionPolicy::open().with_join_credential("sesame"),
        );
        let outsider = sys.spawn(SiteId(1), |_| {});
        let denied = sys.join_and_wait(
            gid,
            outsider,
            Some("wrong".into()),
            Duration::from_millis(500),
        );
        assert!(
            denied.is_err(),
            "join with bad credentials must not complete"
        );
        let allowed =
            sys.join_and_wait(gid, outsider, Some("sesame".into()), Duration::from_secs(5));
        assert!(
            allowed.is_ok(),
            "join with the right credential succeeds: {allowed:?}"
        );
    }

    #[test]
    fn kill_process_triggers_failure_handling_without_killing_the_site() {
        let (mut sys, gid, members, _logs) = build_group_of_three();
        sys.kill_process(members[1]);
        let ok = sys.run_until_condition(Duration::from_secs(10), |s| {
            s.view_of(SiteId(0), gid)
                .map(|v| v.len() == 2)
                .unwrap_or(false)
        });
        assert!(ok);
        assert!(sys.site_is_up(SiteId(1)), "the site itself stays up");
        assert!(!sys.process_exists(members[1]));
    }

    #[test]
    fn views_monitoring_from_handlers() {
        let mut sys = IsisSystem::new(2, LatencyProfile::Modern);
        let observed: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let obs2 = observed.clone();
        let creator = sys.spawn(SiteId(0), |_| {});
        let gid = sys.create_group("watched", creator);
        // Re-spawn a watcher process that monitors the group.
        let _watcher = sys.spawn(SiteId(0), move |b| {
            b.on_view_change(gid, move |_ctx, ev| {
                obs2.borrow_mut().push(ev.view.len());
            });
        });
        let joiner = sys.spawn(SiteId(1), |_| {});
        sys.join_and_wait(gid, joiner, None, Duration::from_secs(5))
            .unwrap();
        sys.run_ms(100);
        assert!(
            observed.borrow().contains(&2),
            "monitor saw the two-member view: {:?}",
            observed.borrow()
        );
    }
}
