//! The user-facing virtual synchrony toolkit core (the paper's primary contribution surface).
//!
//! This crate assembles the protocol machinery of `vsync-proto` into the programming model
//! the paper describes:
//!
//! * [`process`] — the per-process runtime: entry points, message filters, monitors, and the
//!   [`process::ToolCtx`] handle through which handlers issue multicasts, replies and calls
//!   (the continuation-style equivalent of ISIS's lightweight tasks).
//! * [`rpc`] — group RPC: multicast a request, collect 0 / 1 / N / ALL replies, discard
//!   duplicate and null replies, and fail cleanly when every destination has crashed
//!   (paper Section 3.2).
//! * [`stack`] — the per-site protocols process of Figure 1: it owns one
//!   [`vsync_proto::GroupEndpoint`] per group, the failure detector, the reply collectors,
//!   the group-name directory cache, and relays multicasts issued by non-member clients.
//! * [`system`] — [`system::IsisSystem`], the harness that builds a simulated cluster,
//!   spawns processes, creates and joins groups, and runs the event loop; every example,
//!   test and benchmark starts here.
//! * [`protection`] — sender validation and join-credential checks (paper Section 3.10).
//!
//! The crate deliberately exposes the same vocabulary as the paper: `pg_create`, `pg_join`,
//! `pg_lookup`, `pg_monitor`, CBCAST / ABCAST / GBCAST, coordinator–cohort (in `vsync-tools`),
//! and so on, so the twenty-questions walk-through of Section 5 can be followed line by line
//! in `examples/twenty_questions.rs`.

pub mod config;
pub mod process;
pub mod protection;
pub mod rpc;
pub mod stack;
pub mod system;

pub use config::StackConfig;
pub use process::{CtxAction, EntryHandler, IsisProcess, MonitorHandler, ProcessBuilder, ToolCtx};
pub use protection::{FilterDecision, ProtectionPolicy};
pub use rpc::{ReplyWanted, RpcOutcome};
pub use stack::SiteStack;
pub use system::{IsisSystem, SystemBuilder};

// Re-export the identifiers and message types users need constantly.
pub use vsync_msg::{fields, Message, Value};
pub use vsync_net::{MsgId, NetStats, ProtocolKind, SharedStats};
pub use vsync_proto::{
    authority_cmp, Delivery, Frontier, LogSummary, ReformStatus, ReformTracker, View, ViewEvent,
};
pub use vsync_util::{
    Address, Duration, EntryId, GroupId, LatencyProfile, NetParams, ProcessId, Rank, Result,
    SimTime, SiteId, VsError,
};
