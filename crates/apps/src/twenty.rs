//! The distributed *twenty questions* service (paper Section 5).
//!
//! "Our program works by partitioning a replicated database among several processes and
//! supporting queries on it.  It divides the responsibility for handling queries among the
//! processes, which requires that each incoming request be handled consistently.  The program
//! supports dynamic updates, tolerates failures, and can dynamically reassign the workload
//! decomposition."
//!
//! The service follows the paper's rules exactly:
//!
//! * **vertical** queries name one column; the member whose rank equals
//!   `column_index mod NMEMBERS` answers over the whole database and everyone else sends a
//!   null reply (so the caller, who asked for one reply, never hangs);
//! * **horizontal** queries are answered by every member, each over the rows `R` with
//!   `R mod NMEMBERS == rank`;
//! * members beyond `NMEMBERS` are **hot standbys**: they hold the state, send null replies,
//!   and take over a rank automatically when an older member fails (Step 4);
//! * queries travel by CBCAST and dynamic updates by GBCAST (Step 5);
//! * the replicated database can be logged to stable storage for total-failure recovery
//!   (Step 6), and the work-assignment rule can be changed at run time through the
//!   configuration tool (Step 7).

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{
    Address, Duration, EntryId, GroupId, IsisSystem, Message, ProcessId, ProtocolKind, ReplyWanted,
    RpcOutcome, SiteId,
};
use vsync_tools::{ConfigTool, ReplicatedData, StateTransfer, UpdateOrdering};

/// Entry point for queries.
pub const QUERY_ENTRY: EntryId = EntryId(10);
/// Entry point for dynamic database updates.
pub const UPDATE_ENTRY: EntryId = EntryId(11);
/// Entry point for configuration changes (work decomposition).
pub const CONFIG_ENTRY: EntryId = EntryId(12);

/// A relational operator in a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Equality (`color = red`).
    Eq,
    /// Numeric greater-than (`price > 9000`).
    Gt,
    /// Numeric less-than.
    Lt,
}

impl Op {
    fn as_str(self) -> &'static str {
        match self {
            Op::Eq => "=",
            Op::Gt => ">",
            Op::Lt => "<",
        }
    }

    fn parse(s: &str) -> Op {
        match s {
            ">" => Op::Gt,
            "<" => Op::Lt,
            _ => Op::Eq,
        }
    }
}

/// The three permitted answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Answer {
    /// The predicate holds for every row considered.
    Yes,
    /// The predicate holds for no row considered.
    No,
    /// The predicate holds for some rows but not others.
    Sometimes,
    /// The member considered no rows (possible in horizontal mode with few rows).
    Unknown,
}

impl Answer {
    fn as_str(self) -> &'static str {
        match self {
            Answer::Yes => "yes",
            Answer::No => "no",
            Answer::Sometimes => "sometimes",
            Answer::Unknown => "unknown",
        }
    }

    fn parse(s: &str) -> Answer {
        match s {
            "yes" => Answer::Yes,
            "no" => Answer::No,
            "sometimes" => Answer::Sometimes,
            _ => Answer::Unknown,
        }
    }
}

/// A query: a column, an operator, a comparison value and a mode.
#[derive(Clone, Debug)]
pub struct Query {
    /// Column name (`price`, `color`, ...).
    pub column: String,
    /// Relational operator.
    pub op: Op,
    /// Comparison value (numeric comparisons parse it as an integer).
    pub value: String,
    /// Horizontal mode (`*price > 9000` in the paper's syntax).
    pub horizontal: bool,
}

impl Query {
    /// A vertical query.
    pub fn vertical(column: &str, op: Op, value: &str) -> Self {
        Query {
            column: column.to_owned(),
            op,
            value: value.to_owned(),
            horizontal: false,
        }
    }

    /// A horizontal query.
    pub fn horizontal(column: &str, op: Op, value: &str) -> Self {
        Query {
            column: column.to_owned(),
            op,
            value: value.to_owned(),
            horizontal: true,
        }
    }

    fn to_message(&self) -> Message {
        Message::new()
            .with("q-column", self.column.as_str())
            .with("q-op", self.op.as_str())
            .with("q-value", self.value.as_str())
            .with("q-horizontal", self.horizontal)
    }

    fn from_message(m: &Message) -> Option<Query> {
        Some(Query {
            column: m.get_str("q-column")?.to_owned(),
            op: Op::parse(m.get_str("q-op")?),
            value: m.get_str("q-value")?.to_owned(),
            horizontal: m.get_bool("q-horizontal").unwrap_or(false),
        })
    }
}

/// One row of the relation: `(object, color, size, price, make, model)`.
pub type Row = Vec<(String, String)>;

/// The replicated relation.
#[derive(Clone, Debug, Default)]
pub struct Database {
    /// Column names, in order.
    pub columns: Vec<String>,
    /// Rows; each row maps column name to value.
    pub rows: Vec<Row>,
}

impl Database {
    /// The demonstration database from the paper (the first 11 lines of the cars relation).
    pub fn demo() -> Self {
        let columns = ["object", "color", "size", "price", "make", "model"];
        let raw = [
            ["car", "red", "small", "5", "Weeks", "Toy"],
            ["car", "yellow", "tiny", "6", "Mattel", "Toy"],
            ["car", "black", "compact", "4995", "Hyundai", "Excel"],
            ["car", "tan", "wagon", "6190", "Nissan", "Sentra"],
            ["car", "green", "sedan", "10449", "Ford", "Taurus"],
            ["car", "blue", "compact", "5799", "Honda", "Civic"],
            ["car", "white", "wagon", "15248", "Ford", "Taurus"],
            ["car", "blue", "sport", "18409", "Nissan", "300ZX"],
            ["car", "blue", "sport", "26776", "Porsche", "944"],
            ["car", "white", "sport", "35000", "Mercedes", "300D"],
        ];
        let rows = raw
            .iter()
            .map(|r| {
                columns
                    .iter()
                    .zip(r.iter())
                    .map(|(c, v)| (c.to_string(), v.to_string()))
                    .collect()
            })
            .collect();
        Database {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column, if it exists.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    fn row_matches(row: &Row, q: &Query) -> Option<bool> {
        let value = row.iter().find(|(c, _)| c == &q.column).map(|(_, v)| v)?;
        Some(match q.op {
            Op::Eq => value == &q.value,
            Op::Gt => value.parse::<i64>().ok()? > q.value.parse::<i64>().ok()?,
            Op::Lt => value.parse::<i64>().ok()? < q.value.parse::<i64>().ok()?,
        })
    }

    /// Evaluates a query over a subset of rows selected by `keep`.
    pub fn answer_over(&self, q: &Query, keep: impl Fn(usize) -> bool) -> Answer {
        let mut yes = 0usize;
        let mut no = 0usize;
        for (i, row) in self.rows.iter().enumerate() {
            if !keep(i) {
                continue;
            }
            match Self::row_matches(row, q) {
                Some(true) => yes += 1,
                Some(false) | None => no += 1,
            }
        }
        match (yes, no) {
            (0, 0) => Answer::Unknown,
            (_, 0) => Answer::Yes,
            (0, _) => Answer::No,
            _ => Answer::Sometimes,
        }
    }

    /// Evaluates a query over the whole relation.
    pub fn answer(&self, q: &Query) -> Answer {
        self.answer_over(q, |_| true)
    }

    /// Appends a row described as `(column, value)` pairs.
    pub fn add_row(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Serialises the relation into a message (used by the state-transfer tool).
    pub fn snapshot(&self) -> Message {
        let mut m = Message::new();
        m.set("columns", self.columns.join(","));
        m.set("nrows", self.rows.len() as u64);
        for (i, row) in self.rows.iter().enumerate() {
            let encoded: Vec<String> = row.iter().map(|(c, v)| format!("{c}={v}")).collect();
            m.set(&format!("row{i}"), encoded.join(";"));
        }
        m
    }

    /// Rebuilds the relation from a snapshot.
    pub fn from_snapshot(m: &Message) -> Database {
        let columns: Vec<String> = m
            .get_str("columns")
            .unwrap_or("")
            .split(',')
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        let n = m.get_u64("nrows").unwrap_or(0) as usize;
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let Some(encoded) = m.get_str(&format!("row{i}")) else {
                continue;
            };
            let row: Row = encoded
                .split(';')
                .filter_map(|pair| {
                    let (c, v) = pair.split_once('=')?;
                    Some((c.to_owned(), v.to_owned()))
                })
                .collect();
            rows.push(row);
        }
        Database { columns, rows }
    }
}

/// Handle onto one deployed member: its local database replica and counters.
#[derive(Clone)]
pub struct MemberHandle {
    /// The member's process id.
    pub pid: ProcessId,
    /// The member's local database replica.
    pub db: Rc<RefCell<Database>>,
    /// Queries this member answered with a real (non-null) reply.
    pub answered: Rc<RefCell<u64>>,
    /// Updates applied at this member.
    pub updates: Rc<RefCell<u64>>,
    /// The member's configuration tool (step 7: dynamic load balancing).
    pub config: ConfigTool,
    /// The member's replicated-data tool (used for the logging mode of step 6).
    pub replicated: ReplicatedData,
    /// The member's state-transfer tool.
    pub transfer: StateTransfer,
}

/// A deployed twenty-questions service.
pub struct TwentyQuestions {
    /// The group id of the service.
    pub gid: GroupId,
    /// The members, in deployment (age) order.
    pub members: Vec<ProcessId>,
    /// Handles onto each member's local state.
    pub handles: Vec<MemberHandle>,
    /// The number of *active* members (`NMEMBERS`); members beyond this are hot standbys.
    pub nmembers: usize,
}

impl TwentyQuestions {
    /// Deploys the service: one member per entry of `sites`, with the first `nmembers`
    /// active and the rest acting as hot standbys (paper Step 4).
    pub fn deploy(
        sys: &mut IsisSystem,
        name: &str,
        sites: &[SiteId],
        nmembers: usize,
        db: Database,
    ) -> TwentyQuestions {
        assert!(!sites.is_empty());
        let gid = sys.allocate_group_id();
        let mut members = Vec::new();
        let mut handles = Vec::new();
        for (i, site) in sites.iter().enumerate() {
            let (pid, handle) = spawn_member(sys, *site, db.clone(), nmembers, Some(gid), name);
            if i == 0 {
                sys.create_group_with_id(name, gid, pid);
                handle.transfer.mark_ready();
            } else {
                sys.join_and_wait(gid, pid, None, Duration::from_secs(10))
                    .expect("member join");
            }
            members.push(pid);
            handles.push(handle);
        }
        sys.run_ms(50);
        TwentyQuestions {
            gid,
            members,
            handles,
            nmembers,
        }
    }

    /// Issues a query from `client` and collects the replies according to the mode: one reply
    /// for a vertical query, `NMEMBERS` replies for a horizontal one (paper Step 2).
    pub fn query(
        &self,
        sys: &mut IsisSystem,
        client: ProcessId,
        q: &Query,
        max_wait: Duration,
    ) -> Vec<Answer> {
        let wanted = if q.horizontal {
            ReplyWanted::Count(self.nmembers)
        } else {
            ReplyWanted::One
        };
        let outcome: RpcOutcome = sys.client_call(
            client,
            vec![Address::Group(self.gid)],
            QUERY_ENTRY,
            q.to_message(),
            ProtocolKind::Cbcast,
            wanted,
            max_wait,
        );
        outcome
            .replies
            .iter()
            .filter_map(|r| r.get_str("answer").map(Answer::parse))
            .collect()
    }

    /// Issues a dynamic update (paper Step 5): adds a row, delivered by GBCAST so it is
    /// ordered consistently with respect to every query.
    pub fn update(&self, sys: &mut IsisSystem, client: ProcessId, row: Row) {
        let encoded: Vec<String> = row.iter().map(|(c, v)| format!("{c}={v}")).collect();
        let msg = Message::new().with("new-row", encoded.join(";"));
        sys.client_send(client, self.gid, UPDATE_ENTRY, msg, ProtocolKind::Gbcast);
    }

    /// Number of rows in each member's replica (for consistency checks).
    pub fn replica_sizes(&self) -> Vec<usize> {
        self.handles.iter().map(|h| h.db.borrow().len()).collect()
    }
}

/// Spawns one service member at `site`.  `group` is `None` only for the bootstrap member that
/// exists before the group id has been allocated.
fn spawn_member(
    sys: &mut IsisSystem,
    site: SiteId,
    db: Database,
    nmembers: usize,
    group: Option<GroupId>,
    _name: &str,
) -> (ProcessId, MemberHandle) {
    let db = Rc::new(RefCell::new(db));
    let answered = Rc::new(RefCell::new(0u64));
    let updates = Rc::new(RefCell::new(0u64));
    let gid = group.unwrap_or(GroupId(0));
    let config = ConfigTool::new(gid, CONFIG_ENTRY);
    config.load_local("nmembers", nmembers as u64);
    let replicated = ReplicatedData::new(gid, EntryId(19), UpdateOrdering::Causal);
    let db_for_xfer = db.clone();
    let db_for_apply = db.clone();
    let transfer = StateTransfer::new(
        gid,
        move || vec![db_for_xfer.borrow().snapshot()],
        move |_ctx, block| {
            let incoming = Database::from_snapshot(block);
            if !incoming.is_empty() {
                *db_for_apply.borrow_mut() = incoming;
            }
        },
    );

    let db_q = db.clone();
    let answered_q = answered.clone();
    let config_q = config.clone();
    let db_u = db.clone();
    let updates_u = updates.clone();
    let config_attach = config.clone();
    let transfer_attach = transfer.clone();
    let replicated_attach = replicated.clone();

    let pid = sys.spawn(site, move |b| {
        config_attach.attach(b);
        transfer_attach.attach(b);
        replicated_attach.attach(b);
        // Query handler (paper Steps 1-4).
        b.on_entry(QUERY_ENTRY, move |ctx, msg| {
            let Some(q) = Query::from_message(msg) else {
                ctx.null_reply(msg);
                return;
            };
            let group = msg.group().unwrap_or(gid);
            let Some(view) = ctx.view_of(group).cloned() else {
                ctx.null_reply(msg);
                return;
            };
            let Some(rank) = view.rank_of(ctx.me()) else {
                ctx.null_reply(msg);
                return;
            };
            let nmembers = (config_q.read_u64("nmembers").unwrap_or(nmembers as u64) as usize)
                .min(view.len())
                .max(1);
            if rank >= nmembers {
                // Hot standby (Step 4): holds the state, stays invisible to clients.
                ctx.null_reply(msg);
                return;
            }
            let db = db_q.borrow();
            let answer = if q.horizontal {
                db.answer_over(&q, |row| row % nmembers == rank)
            } else {
                let col = db.column_index(&q.column).unwrap_or(0);
                if col % nmembers == rank {
                    db.answer(&q)
                } else {
                    drop(db);
                    ctx.null_reply(msg);
                    return;
                }
            };
            drop(db);
            *answered_q.borrow_mut() += 1;
            ctx.reply(
                msg,
                Message::new()
                    .with("answer", answer.as_str())
                    .with("rank", rank),
            );
        });
        // Dynamic update handler (Step 5): applied by every member, including standbys.
        b.on_entry(UPDATE_ENTRY, move |_ctx, msg| {
            let Some(encoded) = msg.get_str("new-row") else {
                return;
            };
            let row: Row = encoded
                .split(';')
                .filter_map(|pair| {
                    let (c, v) = pair.split_once('=')?;
                    Some((c.to_owned(), v.to_owned()))
                })
                .collect();
            db_u.borrow_mut().add_row(row);
            *updates_u.borrow_mut() += 1;
        });
    });
    let handle = MemberHandle {
        pid,
        db,
        answered,
        updates,
        config,
        replicated,
        transfer,
    };
    (pid, handle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_database_matches_the_paper() {
        let db = Database::demo();
        assert_eq!(db.len(), 10);
        assert_eq!(db.columns.len(), 6);
        assert_eq!(db.column_index("price"), Some(3));
        assert_eq!(db.column_index("missing"), None);
    }

    #[test]
    fn query_evaluation() {
        let db = Database::demo();
        // Every demo row is a car.
        assert_eq!(
            db.answer(&Query::vertical("object", Op::Eq, "car")),
            Answer::Yes
        );
        // Some cars cost more than 9000, some do not.
        assert_eq!(
            db.answer(&Query::vertical("price", Op::Gt, "9000")),
            Answer::Sometimes
        );
        // No car is purple.
        assert_eq!(
            db.answer(&Query::vertical("color", Op::Eq, "purple")),
            Answer::No
        );
        // Row-subset evaluation: only the expensive sports cars.
        let expensive = db.answer_over(&Query::vertical("price", Op::Gt, "16000"), |i| i >= 7);
        assert_eq!(expensive, Answer::Yes);
        // Empty subset.
        assert_eq!(
            db.answer_over(&Query::vertical("price", Op::Gt, "0"), |_| false),
            Answer::Unknown
        );
    }

    #[test]
    fn horizontal_query_partition_matches_the_paper_example() {
        // The paper's example: *price > 9000 with 5 members over the 10-row table returns
        // [no, sometimes, sometimes, sometimes, yes].
        let db = Database::demo();
        let q = Query::horizontal("price", Op::Gt, "9000");
        let answers: Vec<Answer> = (0..5).map(|m| db.answer_over(&q, |r| r % 5 == m)).collect();
        assert_eq!(
            answers,
            vec![
                Answer::No,
                Answer::Sometimes,
                Answer::Sometimes,
                Answer::Sometimes,
                Answer::Yes
            ]
        );
    }

    #[test]
    fn snapshot_roundtrip_preserves_the_relation() {
        let mut db = Database::demo();
        db.add_row(vec![
            ("object".into(), "car".into()),
            ("price".into(), "99999".into()),
        ]);
        let snap = db.snapshot();
        let back = Database::from_snapshot(&snap);
        assert_eq!(back.len(), db.len());
        assert_eq!(back.columns, db.columns);
        assert_eq!(
            back.answer(&Query::vertical("price", Op::Gt, "50000")),
            Answer::Sometimes
        );
    }

    #[test]
    fn query_message_roundtrip() {
        let q = Query::horizontal("price", Op::Gt, "9000");
        let m = q.to_message();
        let back = Query::from_message(&m).unwrap();
        assert_eq!(back.column, "price");
        assert_eq!(back.op, Op::Gt);
        assert!(back.horizontal);
        assert!(Query::from_message(&Message::new()).is_none());
    }
}
