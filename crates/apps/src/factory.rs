//! The factory-automation scenario from the paper's introduction (Section 1).
//!
//! "Consider the design of a distributed system for factory automation, say for VLSI chip
//! fabrication.  Such a system would need to group control processes into services responsible
//! for different aspects of the fabrication procedure.  One service might accept batches of
//! chips needing photographic emulsions, another oversee transport of chips from station to
//! station ..."
//!
//! This module deploys two such services on a simulated cluster:
//!
//! * the **emulsion service**: a process group that executes batch-deposition requests with
//!   the coordinator–cohort tool, so a batch completes even if the member processing it fails
//!   mid-request;
//! * the **transport service**: a process group replicating per-station status with the
//!   replicated-data tool (CBCAST updates, local reads) and using a replicated semaphore to
//!   serialise access to the single inter-station conveyor.

use std::cell::RefCell;
use std::rc::Rc;

use vsync_core::{
    Address, Duration, EntryId, GroupId, IsisSystem, Message, ProcessId, ProtocolKind, ReplyWanted,
    SiteId,
};
use vsync_tools::{CoordCohort, ReplicatedData, SemaphoreTool, UpdateOrdering};

/// Entry point for emulsion batch requests.
pub const BATCH_ENTRY: EntryId = EntryId(50);
/// Entry point for transport status updates.
pub const STATUS_ENTRY: EntryId = EntryId(51);
/// Entry point for conveyor semaphore operations.
pub const CONVEYOR_ENTRY: EntryId = EntryId(52);

/// Handle onto one emulsion-service member.
#[derive(Clone)]
pub struct EmulsionMember {
    /// The member's process id.
    pub pid: ProcessId,
    /// Batches this member processed as coordinator (including take-overs).
    pub processed: Rc<RefCell<Vec<u64>>>,
    /// The member's coordinator–cohort tool.
    pub cc: CoordCohort,
}

/// Handle onto one transport-service member.
#[derive(Clone)]
pub struct TransportMember {
    /// The member's process id.
    pub pid: ProcessId,
    /// The member's replicated station-status map.
    pub status: ReplicatedData,
    /// The member's conveyor semaphore.
    pub conveyor: SemaphoreTool,
}

/// The deployed factory.
pub struct Factory {
    /// Group id of the emulsion service.
    pub emulsion_gid: GroupId,
    /// Group id of the transport service.
    pub transport_gid: GroupId,
    /// Emulsion-service members.
    pub emulsion: Vec<EmulsionMember>,
    /// Transport-service members.
    pub transport: Vec<TransportMember>,
}

impl Factory {
    /// Deploys both services, one member per site in `sites`.
    pub fn deploy(sys: &mut IsisSystem, sites: &[SiteId]) -> Factory {
        let emulsion_gid = sys.allocate_group_id();
        let transport_gid = sys.allocate_group_id();
        let mut emulsion = Vec::new();
        let mut transport = Vec::new();

        for (i, site) in sites.iter().enumerate() {
            // Emulsion service member.
            let processed = Rc::new(RefCell::new(Vec::new()));
            let cc = CoordCohort::new(emulsion_gid);
            let cc_attach = cc.clone();
            let cc_handle = cc.clone();
            let processed_h = processed.clone();
            let pid = sys.spawn(*site, move |b| {
                cc_attach.attach(b);
                let cc_inner = cc_handle.clone();
                b.on_entry(BATCH_ENTRY, move |ctx, msg| {
                    let group = msg.group().unwrap_or(emulsion_gid);
                    let Some(view) = ctx.view_of(group).cloned() else {
                        ctx.null_reply(msg);
                        return;
                    };
                    let plist = view.members.clone();
                    let batch = msg.get_u64("batch").unwrap_or(0);
                    let processed_cb = processed_h.clone();
                    cc_inner.handle(
                        ctx,
                        msg,
                        plist,
                        move |_ctx, request| {
                            // "Deposit the emulsion" for this batch and report the result.
                            let batch = request.get_u64("batch").unwrap_or(0);
                            processed_cb.borrow_mut().push(batch);
                            Message::new().with("deposited", batch)
                        },
                        move |_ctx, _reply| {
                            // Cohort: the coordinator finished; nothing more to do.
                        },
                    );
                    let _ = batch;
                });
            });
            if i == 0 {
                sys.create_group_with_id("emulsion", emulsion_gid, pid);
            } else {
                sys.join_and_wait(emulsion_gid, pid, None, Duration::from_secs(10))
                    .expect("emulsion member join");
            }
            emulsion.push(EmulsionMember { pid, processed, cc });

            // Transport service member.
            let status = ReplicatedData::new(transport_gid, STATUS_ENTRY, UpdateOrdering::Causal);
            let conveyor = SemaphoreTool::new(transport_gid, CONVEYOR_ENTRY);
            conveyor.define("conveyor", 1);
            let status_attach = status.clone();
            let conveyor_attach = conveyor.clone();
            let pid = sys.spawn(*site, move |b| {
                status_attach.attach(b);
                conveyor_attach.attach(b);
            });
            if i == 0 {
                sys.create_group_with_id("transport", transport_gid, pid);
            } else {
                sys.join_and_wait(transport_gid, pid, None, Duration::from_secs(10))
                    .expect("transport member join");
            }
            transport.push(TransportMember {
                pid,
                status,
                conveyor,
            });
        }
        sys.run_ms(50);
        Factory {
            emulsion_gid,
            transport_gid,
            emulsion,
            transport,
        }
    }

    /// Submits an emulsion batch from a client process and waits for the single reply the
    /// coordinator–cohort scheme produces.  Returns the batch number echoed by whichever
    /// member actually performed the deposition.
    pub fn submit_batch(
        &self,
        sys: &mut IsisSystem,
        client: ProcessId,
        batch: u64,
        max_wait: Duration,
    ) -> Option<u64> {
        let outcome = sys.client_call(
            client,
            vec![Address::Group(self.emulsion_gid)],
            BATCH_ENTRY,
            Message::new().with("batch", batch),
            ProtocolKind::Cbcast,
            ReplyWanted::One,
            max_wait,
        );
        outcome.replies.first().and_then(|r| r.get_u64("deposited"))
    }

    /// Publishes a station-status update from one transport member.
    pub fn update_station(
        &self,
        sys: &mut IsisSystem,
        member_index: usize,
        station: &str,
        state: &str,
    ) {
        let member = &self.transport[member_index];
        let gid = self.transport_gid;
        let msg = Message::new()
            .with("rd-item", station)
            .with("rd-value", state);
        sys.client_send(member.pid, gid, STATUS_ENTRY, msg, ProtocolKind::Cbcast);
    }

    /// Reads a station's status from a member's local replica.
    pub fn station_status(&self, member_index: usize, station: &str) -> Option<String> {
        self.transport[member_index].status.read_string(station)
    }

    /// Total batches processed across all emulsion members (each batch exactly once when the
    /// coordinator survives; a batch may be processed twice only if the coordinator fails
    /// after acting but before its reply propagates, the classic at-least-once window the
    /// paper discusses in Section 5's "limits" paragraph).
    pub fn total_batches_processed(&self) -> usize {
        self.emulsion
            .iter()
            .map(|m| m.processed.borrow().len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_points_are_distinct() {
        assert_ne!(BATCH_ENTRY, STATUS_ENTRY);
        assert_ne!(STATUS_ENTRY, CONVEYOR_ENTRY);
        assert!(!BATCH_ENTRY.is_generic());
    }
}
