//! Example applications built on the vsync toolkit.
//!
//! * [`twenty`] — the distributed *twenty questions* service of paper Section 5, including
//!   every development step the paper walks through: the replicated database, vertical and
//!   horizontal query decomposition by member rank, null replies from non-respondents and
//!   standbys, dynamic updates through GBCAST, state transfer to joiners, logging for
//!   total-failure recovery, and dynamic reconfiguration through the configuration tool.
//! * [`factory`] — the factory-automation scenario from the paper's introduction: an
//!   emulsion-deposition service using coordinator–cohort fail-over, a transport service
//!   replicating station status, and a shared-resource semaphore.

pub mod factory;
pub mod twenty;

pub use twenty::{Answer, Database, Op, Query, TwentyQuestions};
