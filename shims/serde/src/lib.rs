//! Minimal stand-in for `serde` so the workspace builds without network access.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to mark types as
//! wire-safe; no code path serializes through serde (the actual wire format is
//! `vsync-msg::codec`).  So the traits here are empty markers and the derives
//! (re-exported from the sibling `serde_derive` shim) expand to nothing.
//! Swapping the real serde back in is a one-line change in the root
//! `Cargo.toml` — see `shims/README.md`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
