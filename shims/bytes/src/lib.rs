//! Minimal stand-in for the `bytes` crate so the workspace builds without network
//! access.  Implements the subset the vsync codec uses — `Bytes`, `BytesMut`, and
//! the `Buf`/`BufMut` traits with big-endian integer accessors — with the same
//! semantics as the real crate (`Bytes` is a cheaply clonable immutable buffer
//! supporting zero-copy `slice`, `BytesMut::freeze` converts without copying).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer: a reference-counted allocation plus a
/// window into it, so [`Bytes::slice`] shares storage instead of copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Returns a zero-copy sub-buffer sharing this buffer's storage, like the real
    /// crate's `Bytes::slice`.  Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.end - self.start;
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let finish = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= finish && finish <= len,
            "slice {begin}..{finish} out of bounds of {len}-byte Bytes"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + finish,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read access to a byte cursor; implemented for `&[u8]` exactly like the real
/// crate, so decoders advance a `&mut &[u8]`.  All integer accessors are
/// big-endian, matching `bytes`' default.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(raw)
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer.  All integer writers are big-endian,
/// matching `bytes`' default.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(0xA5);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_i64(-42);
        buf.put_f64(2.5);
        buf.put_slice(b"tail");

        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 0xA5);
        assert_eq!(cur.get_u16(), 0xBEEF);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.get_i64(), -42);
        assert_eq!(cur.get_f64(), 2.5);
        assert_eq!(cur.remaining(), 4);
        cur.advance(4);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn big_endian_wire_layout() {
        let mut buf = BytesMut::new();
        buf.put_u32(1);
        assert_eq!(&buf[..], &[0, 0, 0, 1]);
    }

    #[test]
    fn slice_shares_storage_and_composes() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // Same backing allocation, not a copy.
        assert_eq!(mid.as_ptr() as usize, b.as_ptr() as usize + 2);
        // Slicing a slice stays relative to the inner window.
        let inner = mid.slice(1..=2);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(b.slice(..), b);
        assert_eq!(b.slice(8..8).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn equality_and_hash_follow_contents() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![9u8, 9]);
        let b = Bytes::copy_from_slice(&[9u8, 9]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
