//! Minimal stand-in for `parking_lot` so the workspace builds without network
//! access.  Provides `Mutex`/`RwLock` with parking_lot's panic-free, non-poisoning
//! `lock()` API, implemented over `std::sync`.  Poisoning is handled the way
//! parking_lot does: a panicking holder simply releases the lock.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with `parking_lot`'s non-poisoning API, backed by `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
