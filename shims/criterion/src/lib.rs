//! Minimal stand-in for `criterion` so the workspace's benches build and run
//! without network access.  Provides the macro/struct surface the vsync benches
//! use (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `BenchmarkId`, `BatchSize`,
//! `black_box`) and reports a simple mean wall-clock time per iteration instead
//! of criterion's statistical analysis.  See `shims/README.md` for swapping the
//! real criterion back in.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's recommended replacement.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim runs one setup per iteration
/// regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warmup, then `samples` timed iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut timed = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
        }
        self.elapsed = timed;
        self.iters = self.samples as u64;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (routine never ran)");
        } else {
            let per_iter = self.elapsed / self.iters as u32;
            println!("{name:<40} {per_iter:>12.2?}/iter  ({} iters)", self.iters);
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Applies command-line flags. The real criterion has a full CLI; the shim honours
    /// just `--quick` (drop to 2 samples for CI smoke runs) and ignores everything else
    /// (notably the `--bench` filter cargo forwards).
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--quick") {
            self.sample_size = 2;
        }
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    bencher.report(name);
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_runs_routine_and_reports() {
        let mut count = 0u64;
        run_one("shim_iter", 5, |b| b.iter(|| count += 1));
        assert_eq!(count, 6, "warmup + samples");
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        run_one("shim_batched", 4, |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| {
                    runs += 1;
                    x
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5);
        assert_eq!(runs, 5);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
        assert_eq!(BenchmarkId::from_parameter("cbcast").to_string(), "cbcast");
    }
}
