//! Minimal stand-in for `proptest` so the workspace builds and its property tests
//! *run* without network access.
//!
//! This is a real (if small) property-testing engine: strategies generate random
//! values from a deterministic per-test RNG and the `proptest!` macro runs each
//! test body for `ProptestConfig::cases` generated inputs.  What it deliberately
//! omits relative to the real crate is *shrinking* (failing inputs are reported
//! as-is, not minimized) and persistence of failure seeds.  The API mirrors the
//! subset the vsync test-suite uses:
//!
//! * `proptest! { #![proptest_config(..)] #[test] fn f(x in strat, ..) { .. } }`
//! * `Strategy` with `prop_map`, `prop_recursive`, `boxed`
//! * `any::<T>()`, integer/float range strategies, tuple strategies
//! * `&str` regex strategies for a practical regex subset (char classes,
//!   `.`, and `{m}`/`{m,n}`/`*`/`+`/`?` quantifiers)
//! * `collection::vec`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`
//!
//! See `shims/README.md` for how to swap the real proptest back in.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs its body for `config.cases` random
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $pat = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Chooses uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Asserts a condition inside a property test (no shrinking, so this is `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}
