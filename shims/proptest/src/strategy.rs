//! The `Strategy` trait and the built-in strategies the vsync tests use.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a strategy
/// simply produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `self` generates leaves, and `recurse` lifts a
    /// strategy for depth-`d` values into one for depth-`d+1` values.  Each
    /// generated value picks a random depth in `0..=depth`.  The `_desired_size`
    /// and `_expected_branch_size` tuning knobs of the real crate are accepted
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            recurse: Rc::new(move |s| recurse(s).boxed()),
            depth,
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let depth = rng.below(u64::from(self.depth) + 1) as u32;
        let mut strat = self.leaf.clone();
        for _ in 0..depth {
            strat = (self.recurse)(strat);
        }
        strat.gen_value(rng)
    }
}

/// Uniform choice between strategies of one value type; built by `prop_oneof!`.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.0.len() as u64) as usize;
        self.0[pick].gen_value(rng)
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with occasional wider code points, always valid chars.
        if rng.below(4) == 0 {
            char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('¿')
        } else {
            (0x20 + rng.below(0x5F) as u8) as char
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spanning a wide magnitude range.
        let mag = rng.unit_f64() * 1e18;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// String literals act as regex strategies, as in the real crate, for the
/// subset: literal chars, `.`, `[..]` classes (ranges, literals, trailing `-`),
/// and `{m}` / `{m,n}` / `*` / `+` / `?` quantifiers.
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_regex(self, rng)
    }
}

const UNBOUNDED_REP: u64 = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// Inclusive char ranges; a literal is a one-char range.
    Class(Vec<(char, char)>),
    /// `.` — any printable ASCII character.
    Dot,
}

fn gen_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_regex(pattern);
    let mut out = String::new();
    for (atom, min, max) in atoms {
        let n = min + rng.below(max - min + 1);
        for _ in 0..n {
            out.push(gen_atom(&atom, rng));
        }
    }
    out
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Dot => (0x20 + rng.below(0x5F) as u8) as char,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = u64::from(*hi) - u64::from(*lo) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).expect("valid class char");
                }
                pick -= span;
            }
            unreachable!("pick < total")
        }
    }
}

/// Parses the supported regex subset into (atom, min-reps, max-reps) triples.
fn parse_regex(pattern: &str) -> Vec<(Atom, u64, u64)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"))
                    + i
                    + 1;
                let atom = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                atom
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 2;
                Atom::Class(vec![(c, c)])
            }
            c => {
                assert!(
                    !"(){}|*+?".contains(c),
                    "unsupported regex syntax {c:?} in {pattern:?} (shim supports classes, '.', and quantifiers)"
                );
                i += 1;
                Atom::Class(vec![(c, c)])
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i, pattern);
        atoms.push((atom, min, max));
    }
    atoms
}

fn parse_class(body: &[char], pattern: &str) -> Atom {
    assert!(
        body.first() != Some(&'^'),
        "negated classes are not supported by the regex shim ({pattern:?})"
    );
    let mut ranges = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            ranges.push((body[j], body[j + 2]));
            j += 3;
        } else {
            // Includes a trailing '-' or a '-' not forming a range.
            ranges.push((body[j], body[j]));
            j += 1;
        }
    }
    assert!(!ranges.is_empty(), "empty class in regex {pattern:?}");
    Atom::Class(ranges)
}

fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (u64, u64) {
    match chars.get(*i) {
        Some('*') => {
            *i += 1;
            (0, UNBOUNDED_REP)
        }
        Some('+') => {
            *i += 1;
            (1, UNBOUNDED_REP)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('{') => {
            let close = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"))
                + *i;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (5u32..17).gen_value(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..3.0).gen_value(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn regex_class_with_counted_reps() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-z]{1,12}".gen_value(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn regex_identifier_pattern() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = "[a-zA-Z_][a-zA-Z0-9_-]{0,15}".gen_value(&mut rng);
            let mut cs = s.chars();
            let head = cs.next().unwrap();
            assert!(head.is_ascii_alphabetic() || head == '_');
            assert!(s.len() <= 16);
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn regex_dot_generates_printable_ascii() {
        let mut rng = TestRng::new(4);
        for _ in 0..200 {
            let s = ".{0,64}".gen_value(&mut rng);
            assert!(s.len() <= 64);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_union_uses_every_branch() {
        let mut rng = TestRng::new(5);
        let strat = crate::prop_oneof![(0u32..1).prop_map(|_| 'a'), (0u32..1).prop_map(|_| 'b')];
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match strat.gen_value(&mut rng) {
                'a' => seen_a = true,
                _ => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn recursive_reaches_nonzero_depth() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..255)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 32, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(6);
        let max_depth = (0..200)
            .map(|_| depth(&strat.gen_value(&mut rng)))
            .max()
            .unwrap();
        assert!(max_depth >= 1, "recursion never recursed");
        assert!(max_depth <= 3, "recursion exceeded depth bound");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(7);
        let (a, b, c) = (0u8..10, 10u8..20, 20u8..30).gen_value(&mut rng);
        assert!(a < 10 && (10..20).contains(&b) && (20..30).contains(&c));
    }
}
