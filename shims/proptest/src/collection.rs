//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size specifications for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span + 1) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_span_the_range() {
        let mut rng = TestRng::new(42);
        let strat = vec(0u8..10, 2..6);
        let mut seen = [false; 7];
        for _ in 0..300 {
            let v = strat.gen_value(&mut rng);
            assert!((2..6).contains(&v.len()));
            seen[v.len()] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen[2] && seen[3] && seen[4] && seen[5]);
    }
}
