//! The deterministic RNG and per-test configuration used by the shim runner.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A splitmix64 RNG seeded deterministically from the test name, so failures
/// reproduce across runs and machines.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seeds from the test function name (FNV-1a), so each property test draws
    /// an independent but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (returns 0 when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("beta");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn unit_f64_is_in_range() {
        let mut r = TestRng::new(11);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
