//! No-op derive macros standing in for `serde_derive` in this offline workspace.
//!
//! The vsync crates only ever *derive* `Serialize`/`Deserialize` — nothing in the
//! workspace serializes through serde at runtime (the wire format is the hand-written
//! codec in `vsync-msg::codec`).  These derives therefore expand to nothing; the
//! marker traits live in `shims/serde`.  See `shims/README.md` for the swap-back
//! instructions once a crates.io mirror is reachable.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
